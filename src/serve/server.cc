#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace visrt::serve {

namespace {

/// Accumulate one session's counters into an aggregate: monotone counts
/// add, residency peaks take the maximum over sessions (a per-session
/// bound, not a co-residency sum).
void merge_counters(SessionCounters& into, const SessionCounters& from) {
  into.statements += from.statements;
  into.rejected += from.rejected;
  into.launches += from.launches;
  into.iterations += from.iterations;
  into.retire_calls += from.retire_calls;
  into.retired_launches += from.retired_launches;
  into.retired_ops += from.retired_ops;
  into.eqset_slots_reclaimed += from.eqset_slots_reclaimed;
  into.peak_resident_launches =
      std::max(into.peak_resident_launches, from.peak_resident_launches);
  into.peak_resident_ops =
      std::max(into.peak_resident_ops, from.peak_resident_ops);
  into.verified_launches += from.verified_launches;
  into.verify_violations += from.verify_violations;
}

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string error_line(std::string_view what) {
  return "{\"error\":\"" + obs::json_escape(what) + "\"}";
}

/// Write `line` + '\n' to a socket, tolerating a vanished client.
void write_line(int fd, std::string_view line) {
  std::string buf(line);
  buf.push_back('\n');
  std::size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return; // client gone; the session result is still aggregated
    }
    off += static_cast<std::size_t>(n);
  }
}

} // namespace

/// One client connection.  The connection's worker thread owns `session`
/// and `inbuf`; the mutable snapshot fields below the comment are the
/// published view other threads (stats/metrics) read under Server::mu_.
struct Server::Connection {
  int fd = -1;

  std::unique_ptr<StreamSession> session; // worker-thread only
  std::string inbuf;                      // worker-thread only

  // Published under Server::mu_ by publish():
  SessionCounters snap;
  std::uint64_t resident_launches = 0;
  std::uint64_t resident_ops = 0;
  std::uint64_t live_eqsets = 0;
  bool counted = false; ///< included in sessions_total_
  bool active = false;  ///< has a live session not yet merged
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()) {}

Server::~Server() { stop(); }

void Server::start() {
  require(!started_, "server already started");
  require(!options_.socket_path.empty(), "serve: socket path is empty");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(options_.socket_path.size() < sizeof(addr.sun_path),
          "serve: socket path too long for AF_UNIX");
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "serve: socket() failed");
  ::unlink(options_.socket_path.c_str()); // stale socket from a past run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ApiError("serve: cannot bind " + options_.socket_path + ": " +
                   std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ApiError(std::string("serve: listen() failed: ") +
                   std::strerror(errno));
  }
  int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_); // accept loop is down; no new workers appear
  }
  for (std::thread& w : workers)
    if (w.joinable()) w.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (started_) ::unlink(options_.socket_path.c_str());
  started_ = false;
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(mu_);
    conns_.push_back(conn);
    workers_.emplace_back([this, conn] { handle_connection(conn); });
  }
}

void Server::handle_connection(std::shared_ptr<Connection> conn) {
  bool failed = false;
  bool replied = false;
  try {
    char chunk[65536];
    bool open = true;
    while (open) {
      if (stop_.load(std::memory_order_relaxed)) break; // drain
      pollfd pfd{conn->fd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, options_.poll_interval_ms);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0) continue;
      ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) break; // EOF: behaves like @end below
      conn->inbuf.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        std::size_t nl = conn->inbuf.find('\n', start);
        if (nl == std::string::npos) break;
        std::string_view line(conn->inbuf.data() + start, nl - start);
        std::string reply;
        open = handle_line(*conn, line, reply);
        if (!reply.empty()) write_line(conn->fd, reply);
        start = nl + 1;
        if (!open) {
          replied = true;
          break;
        }
      }
      conn->inbuf.erase(0, start);
      publish(*conn, /*active=*/true);
    }
    // EOF or drain without @end: finish the in-flight session and write
    // its result line so no analysis state is silently dropped.
    if (!replied && conn->session != nullptr) {
      conn->session->finish();
      write_line(conn->fd, result_json(*conn->session));
    }
  } catch (const std::exception& e) {
    write_line(conn->fd, error_line(e.what()));
    failed = true;
  }
  publish(*conn, /*active=*/false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->counted) {
      merge_counters(finished_totals_, conn->snap);
      if (failed)
        ++sessions_failed_;
      else
        ++sessions_completed_;
    }
    conn->active = false;
    conn->resident_launches = conn->resident_ops = conn->live_eqsets = 0;
  }
  conn->session.reset(); // release the Runtime promptly
  ::shutdown(conn->fd, SHUT_RDWR);
  ::close(conn->fd);
  conn->fd = -1;
}

bool Server::handle_line(Connection& conn, std::string_view line,
                         std::string& reply) {
  if (!line.empty() && line.front() == '@') {
    if (line == "@metrics") {
      reply = metrics_json();
      return true;
    }
    if (line == "@end") {
      if (conn.session != nullptr) {
        conn.session->finish();
        reply = result_json(*conn.session);
      } else {
        reply = "{\"ok\":true,\"launches\":0}";
      }
      return false;
    }
    reply = error_line("unknown control line: " + std::string(line));
    return true;
  }
  if (conn.session == nullptr) {
    SessionOptions so = options_.session;
    int fd = conn.fd;
    so.on_error = [fd](const std::string& what) {
      write_line(fd, error_line(what));
    };
    conn.session = std::make_unique<StreamSession>(std::move(so));
    std::lock_guard<std::mutex> lock(mu_);
    conn.counted = true;
    conn.active = true;
    ++sessions_total_;
  }
  std::string stmt(line);
  stmt.push_back('\n');
  conn.session->feed(stmt);
  return true;
}

void Server::publish(Connection& conn, bool active) {
  if (conn.session == nullptr) return;
  SessionCounters snap = conn.session->counters();
  std::uint64_t rl = 0, ro = 0, le = 0;
  if (const Runtime* rt = conn.session->runtime()) {
    rl = rt->resident_launches();
    ro = rt->work_graph().resident_ops();
    le = rt->engine_stats().live_eqsets;
  }
  std::lock_guard<std::mutex> lock(mu_);
  conn.snap = snap;
  conn.active = active && conn.counted;
  conn.resident_launches = rl;
  conn.resident_ops = ro;
  conn.live_eqsets = le;
}

ServeStats Server::stats() const {
  ServeStats s;
  std::lock_guard<std::mutex> lock(mu_);
  s.totals = finished_totals_;
  s.sessions_total = sessions_total_;
  s.sessions_completed = sessions_completed_;
  s.sessions_failed = sessions_failed_;
  for (const std::shared_ptr<Connection>& c : conns_) {
    if (!c->active) continue;
    ++s.sessions_active;
    merge_counters(s.totals, c->snap);
    s.resident_launches += c->resident_launches;
    s.resident_ops += c->resident_ops;
    s.live_eqsets += c->live_eqsets;
  }
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_time_)
                   .count();
  return s;
}

std::string Server::metrics_json() const {
  ServeStats s = stats();
  const SessionCounters& t = s.totals;
  std::ostringstream os;
  os << "{\"schema_version\":" << obs::kMetricsSchemaVersion
     << ",\"binary\":\"visrt_serve\",\"serve\":{"
     << "\"sessions_total\":" << s.sessions_total
     << ",\"sessions_active\":" << s.sessions_active
     << ",\"sessions_completed\":" << s.sessions_completed
     << ",\"sessions_failed\":" << s.sessions_failed
     << ",\"statements\":" << t.statements << ",\"rejected\":" << t.rejected
     << ",\"launches\":" << t.launches << ",\"iterations\":" << t.iterations
     << ",\"retire_calls\":" << t.retire_calls
     << ",\"retired_launches\":" << t.retired_launches
     << ",\"retired_ops\":" << t.retired_ops
     << ",\"eqset_slots_reclaimed\":" << t.eqset_slots_reclaimed
     << ",\"peak_resident_launches\":" << t.peak_resident_launches
     << ",\"peak_resident_ops\":" << t.peak_resident_ops
     << ",\"resident_launches\":" << s.resident_launches
     << ",\"resident_ops\":" << s.resident_ops
     << ",\"live_eqsets\":" << s.live_eqsets;
  // Only sessions configured for inline verification report it — keeps
  // the metrics shape (and the CI golden) stable when verification is off.
  if (options_.session.verify)
    os << ",\"verify\":{\"verified_launches\":" << t.verified_launches
       << ",\"violations\":" << t.verify_violations << "}";
  os << ",\"caps\":{"
     << "\"max_resident_launches\":" << options_.session.max_resident_launches
     << ",\"max_history_depth\":" << options_.session.max_history_depth
     << ",\"retire_every\":" << options_.session.retire_every << "}"
     << ",\"timing\":{\"uptime_s\":" << obs::json_number(s.uptime_s)
     << ",\"launches_per_s\":"
     << obs::json_number(s.uptime_s > 0
                             ? static_cast<double>(t.launches) / s.uptime_s
                             : 0.0)
     << "}}}";
  return os.str();
}

std::string Server::result_json(const StreamSession& session) const {
  const SessionResult& r = session.result();
  const SessionCounters& c = session.counters();
  std::ostringstream os;
  os << "{\"ok\":true,\"launches\":" << r.launches
     << ",\"dep_edges\":" << r.dep_edges << ",\"statements\":" << c.statements
     << ",\"rejected\":" << c.rejected
     << ",\"retire_calls\":" << c.retire_calls
     << ",\"retired_launches\":" << c.retired_launches
     << ",\"peak_resident_launches\":" << c.peak_resident_launches
     << ",\"dep_graph_hash\":\"" << hex_u64(r.dep_graph_hash)
     << "\",\"schedule_hash\":\"" << hex_u64(r.schedule_hash)
     << "\",\"value_hash\":\"" << hex_u64(r.value_hash)
     << "\",\"final_hashes\":[";
  for (std::size_t i = 0; i < r.final_hashes.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << hex_u64(r.final_hashes[i]) << "\"";
  }
  os << "]";
  if (r.verify.has_value()) os << ",\"verify\":" << r.verify->to_json();
  os << "}";
  return os.str();
}

void Server::run_stream(std::istream& in, std::ostream& out) {
  SessionOptions so = options_.session;
  so.on_error = [&out](const std::string& what) {
    out << error_line(what) << "\n" << std::flush;
  };
  StreamSession session(std::move(so));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++sessions_total_;
  }
  bool ended = false;
  std::string line;
  while (!ended && std::getline(in, line)) {
    if (!line.empty() && line.front() == '@') {
      if (line == "@metrics") {
        // The stdin session is not an accepted connection: fold its own
        // live counters in by hand so the report covers it.
        SessionCounters snap;
        {
          std::lock_guard<std::mutex> lock(mu_);
          snap = finished_totals_;
          merge_counters(finished_totals_, session.counters());
        }
        out << metrics_json() << "\n" << std::flush;
        std::lock_guard<std::mutex> lock(mu_);
        finished_totals_ = snap;
      } else if (line == "@end") {
        ended = true;
      } else {
        out << error_line("unknown control line: " + line) << "\n"
            << std::flush;
      }
      continue;
    }
    line.push_back('\n');
    session.feed(line);
  }
  session.finish();
  out << result_json(session) << "\n" << std::flush;
  std::lock_guard<std::mutex> lock(mu_);
  merge_counters(finished_totals_, session.counters());
  ++sessions_completed_;
}

} // namespace visrt::serve
