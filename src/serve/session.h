// visrt/serve/session.h
//
// One streaming-analysis session: the incremental counterpart of the
// fuzzer's batch oracle execution.  A session accepts `.visprog` IR a
// chunk of bytes at a time (straight off a socket or stdin), parses it
// statement-by-statement with VisprogStreamParser, and drives a private
// Runtime as launches arrive — dependence analysis is incremental per
// launch, and completed prefixes are retired (Runtime::retire) under the
// session's residency caps, so memory stays flat over unbounded streams.
//
// Everything a session computes is bit-identical to the batch path by
// construction:
//
//   value hash       rolling FNV fold of the per-launch materialized-value
//                    hashes in launch order (fold of RunResult::launch_hashes),
//   dep-graph hash   DepGraph::stream_hash (covers retired launches),
//   schedule hash    Runtime::schedule_hash (frozen prefix + live suffix),
//   final hashes     per-field observe() at end-of-stream.
//
// The serve tests and `visrt_fuzz --stream` assert exactly this
// equivalence against fuzz::run_program.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/incremental.h"
#include "fuzz/program.h"
#include "fuzz/serialize.h"
#include "obs/flight.h"
#include "obs/histogram.h"
#include "runtime/runtime.h"

namespace visrt::serve {

/// The serving layer's latency histograms (docs/OBSERVABILITY.md): one
/// block of always-on log-bucketed histograms recording the session hot
/// paths.  The server owns one shared block that every session records
/// into (wait-free, so sessions never serialize on telemetry); a session
/// constructed without one owns a private block (bench/stream_sustained
/// reads per-run percentiles that way).
struct SessionLatency {
  obs::Histogram launch_analysis;  ///< per-launch analysis ns (runtime tap)
  obs::Histogram statement_parse;  ///< per-statement parse ns
  obs::Histogram retire_pause;     ///< Runtime::retire pause ns
  obs::Histogram metrics_request;  ///< @metrics reply-build ns
};

/// Memory-bounding and execution knobs of one session.
struct SessionOptions {
  /// Retire completed prefixes every N ingested launches (0 = only when
  /// max_resident_launches forces it).
  std::size_t retire_every = 1024;
  /// Residency cap: retire whenever more than this many launches are
  /// resident (0 = no cap).  The cap is enforced opportunistically — the
  /// retirement cut can only advance past launches whose schedule is
  /// provably final — so residency plateaus at the cap plus the
  /// analysis-dependent tail rather than truncating it.
  std::size_t max_resident_launches = 8192;
  /// Per-equivalence-set history depth before value payloads collapse into
  /// a composite view (RuntimeConfig::max_history_depth; 0 = never).
  std::size_t max_history_depth = 64;
  /// Husk-compaction slack forwarded to Runtime::retire.
  std::size_t max_dead_eqsets = 1024;
  /// Execute task bodies and track region values (matches the oracle).
  /// Off for analysis-only ingest, where value hashes stay zero.
  bool track_values = true;
  /// Override the stream's `threads` directive when nonzero.
  unsigned analysis_threads = 0;
  /// Override the stream's `shard_batch` directive when nonzero
  /// (RuntimeConfig::shard_batch granularity).
  std::size_t shard_batch = 0;
  /// Override the stream's configured engine.
  std::optional<Algorithm> subject;
  /// Verify each launch's emitted edges on arrival with the incremental
  /// spy (analysis/incremental.h): interference recomputed from geometry
  /// + privileges, transitive order answered by the O(1)
  /// order-maintenance labels, sustained across retirement epochs.
  /// Violations are reported through on_error as they are found and the
  /// aggregate report lands in SessionResult::verify.
  bool verify = false;
  /// Shared latency sink (see SessionLatency).  Null: the session owns a
  /// private block.  Must outlive the session.
  SessionLatency* latency = nullptr;
  /// Test hook: trip an internal invariant once this many launches have
  /// been ingested (0 = never).  Exercises the flight-recorder crash-dump
  /// path end-to-end (tests and the CI crash-dump smoke).
  std::uint64_t inject_check_failure_after = 0;
  /// Recoverable statement errors (malformed or semantically invalid
  /// lines) are reported here and the offending statement is skipped; the
  /// session keeps parsing.  Unset: errors are silently counted only.
  std::function<void(const std::string&)> on_error;
};

/// Monotone per-session (and, summed, per-server) ingest counters.
struct SessionCounters {
  std::uint64_t statements = 0; ///< statements applied (excl. rejected)
  std::uint64_t rejected = 0;   ///< statements rejected as recoverable
  std::uint64_t launches = 0;   ///< launches ingested (index points incl.)
  std::uint64_t iterations = 0; ///< end_iteration markers
  std::uint64_t retire_calls = 0;
  std::uint64_t retired_launches = 0;
  std::uint64_t retired_ops = 0;
  std::uint64_t eqset_slots_reclaimed = 0;
  /// Maximum resident launches/ops observed *after* each item's retirement
  /// opportunity — the quantity the residency caps bound.
  std::uint64_t peak_resident_launches = 0;
  std::uint64_t peak_resident_ops = 0;
  /// Inline verification progress (zero unless SessionOptions::verify).
  std::uint64_t verified_launches = 0;
  std::uint64_t verify_violations = 0; ///< unordered + imprecise so far
};

/// Results of a finished session (valid after finish()).
struct SessionResult {
  /// FNV fold of the per-launch materialized-value hashes in launch order;
  /// equals folding fuzz::RunResult::launch_hashes of a batch run.  0 when
  /// value tracking is off.
  std::uint64_t value_hash = 0;
  /// Final observe() hash per field-table entry.
  std::vector<std::uint64_t> final_hashes;
  std::uint64_t dep_graph_hash = 0;
  std::uint64_t schedule_hash = 0;
  std::size_t launches = 0;
  std::size_t dep_edges = 0;
  /// Aggregate incremental-verification report (SessionOptions::verify).
  std::optional<analysis::SpyReport> verify;
};

class StreamSession {
public:
  explicit StreamSession(SessionOptions options = {});
  ~StreamSession();

  /// Ingest raw bytes: parse complete statements and apply them to the
  /// session's Runtime.  Recoverable errors go to options.on_error; a
  /// non-recoverable failure (engine invariant, crash) throws and poisons
  /// the session.
  void feed(std::string_view bytes);

  /// End of input: parse any final unterminated line, close the pending
  /// iteration, run the trailing per-field observes, and capture the
  /// result hashes.  Idempotent.
  void finish();
  bool finished() const { return finished_; }

  /// Valid after finish().
  const SessionResult& result() const { return result_; }
  const SessionCounters& counters() const { return counters_; }

  /// The session's runtime; null until the first stream item (or field
  /// declaration at finish()) instantiates it.
  Runtime* runtime() { return runtime_.get(); }
  const Runtime* runtime() const { return runtime_.get(); }

  /// The declaration mirror accumulated so far.
  const fuzz::ProgramSpec& spec() const { return spec_; }

  /// The latency block this session records into (shared or private).
  SessionLatency& latency() { return *latency_; }
  const SessionLatency& latency() const { return *latency_; }

  /// Launches left in the current over-cap retire backoff window (0 =
  /// not backing off).  The @health verdict degrades while any session
  /// is backing off: its live analysis tail exceeds the residency cap.
  std::size_t retire_backoff() const { return retire_backoff_; }

private:
  void feed_tail();
  void apply(const fuzz::VisprogStatement& st);
  void apply_decl(const fuzz::VisprogStatement& st);
  void apply_item(const fuzz::StreamItem& item);
  void instantiate();
  void drain_verify();
  void maybe_retire(bool force);
  void note_residency();
  void body(TaskContext& ctx, std::span<const fuzz::ReqSpec> reqs,
            std::uint64_t salt);

  SessionOptions options_;
  fuzz::VisprogStreamParser parser_;
  fuzz::ProgramSpec spec_; ///< declaration mirror + config (stream not kept)
  int trace_depth_ = 0;
  std::size_t launches_since_retire_ = 0;
  /// Launches to ingest before the over-cap trigger may force another
  /// retire, set after a retire that failed to get back under the cap.
  std::size_t retire_backoff_ = 0;
  LaunchID next_expected_ = 0;

  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<analysis::IncrementalVerifier> verifier_;
  std::vector<RegionHandle> regions_;
  std::vector<PartitionHandle> partitions_;

  std::unique_ptr<SessionLatency> owned_latency_;
  SessionLatency* latency_ = nullptr;

  SessionCounters counters_;
  SessionResult result_;
  std::uint64_t value_hash_;
  bool finished_ = false;
};

/// FNV fold of per-launch value hashes in launch order — apply to a batch
/// run's RunResult::launch_hashes to compare with
/// SessionResult::value_hash.
std::uint64_t fold_value_hashes(std::span<const std::uint64_t> hashes);

} // namespace visrt::serve
