// visrt/serve/server.h
//
// The streaming analysis daemon behind `visrt_cli serve`: a local
// (AF_UNIX) socket server multiplexing concurrent client sessions, each an
// independent serve::StreamSession (its own Runtime, incremental analysis,
// epoch retirement).  Sessions share nothing but the aggregated counters,
// following the Distributed FrameBuffer serving pattern: many producers
// feed independent analysis state, and observability aggregates
// asynchronously off the ingest path.
//
// Wire protocol (line-oriented, one session per connection):
//
//   client -> server   .visprog statements, one per line (fuzz/serialize.h)
//   client -> server   @metrics     reply with one metrics JSON line
//   client -> server   @health      reply with one health-verdict JSON line
//   client -> server   @prometheus  reply with a text-exposition block
//                                   terminated by a "# EOF" line
//   client -> server   @end         finish the session, reply with one
//                                   result JSON line, close
//   server -> client   {"error":...}  a rejected statement (session lives)
//
// EOF without @end behaves like @end (half-close friendly).  SIGTERM
// drain: Server::stop() stops accepting, then every connection finishes
// its in-flight session, writes its result line and closes — no analysis
// state is dropped.
//
// The metrics line is the schema-v2 envelope with a "serve" section
// (docs/SERVING.md); host-dependent timing lives in its "timing"
// subobject so tests can strip it and byte-compare the rest.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session.h"

namespace visrt::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket.
  std::string socket_path;
  /// Per-session execution and memory-bounding knobs.
  SessionOptions session;
  /// Stop-flag poll interval for the accept and connection loops.
  int poll_interval_ms = 200;
  /// Background sampler cadence (daemon mode, VISRT_FLIGHT builds): every
  /// interval the sampler thread snapshots counters/latency/residency into
  /// the bounded time-series ring.  0 disables the sampler.
  int sampler_interval_ms = 1000;
  /// Time-series ring capacity (oldest samples overwritten).
  std::size_t sampler_capacity = 600;
};

/// One time-series point the sampler records (daemon mode).
struct ServeSample {
  double uptime_s = 0;
  std::uint64_t statements = 0;
  std::uint64_t launches = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t resident_launches = 0;
  std::uint64_t launch_p99_ns = 0; ///< running launch-analysis p99
};

/// Point-in-time aggregate across all sessions, ever and active.
struct ServeStats {
  std::uint64_t sessions_total = 0;     ///< sessions that saw a statement
  std::uint64_t sessions_active = 0;
  std::uint64_t sessions_completed = 0; ///< finished cleanly (incl. drains)
  std::uint64_t sessions_failed = 0;    ///< died on a non-recoverable error
  SessionCounters totals;               ///< summed over all sessions
  std::uint64_t resident_launches = 0;  ///< gauge: sum over active sessions
  std::uint64_t resident_ops = 0;       ///< gauge: sum over active sessions
  std::uint64_t live_eqsets = 0;        ///< gauge: sum over active sessions
  std::uint64_t sessions_in_backoff = 0; ///< gauge: active, over-cap backoff
  double uptime_s = 0;
};

class Server {
public:
  explicit Server(ServerOptions options);
  ~Server();

  /// Bind + listen + start the accept loop.  Throws ApiError when the
  /// socket cannot be created.
  void start();

  /// Graceful drain: stop accepting, finish every in-flight session
  /// (each writes its result line), join all threads, remove the socket.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Has stop() been requested (e.g. by a signal handler via
  /// request_stop)?
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }
  /// Async-signal-safe stop request; the accept/connection loops notice
  /// it within one poll interval.  stop() must still be called to join.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Single-session stdin mode: read statements/controls from `in`,
  /// write replies to `out`; returns when the stream ends.  No threads.
  void run_stream(std::istream& in, std::ostream& out);

  ServeStats stats() const;
  /// The schema-v2 metrics envelope with the "serve" section (including
  /// the "latency" histogram section; docs/SERVING.md).
  std::string metrics_json() const;
  /// One-line up/degraded/draining verdict (the @health reply).
  std::string health_json() const;
  /// Prometheus/OpenMetrics text exposition of every counter, gauge and
  /// latency histogram, terminated by a "# EOF" line (the @prometheus
  /// reply).
  std::string prometheus_text() const;

  /// The shared latency block every session of this server records into.
  const SessionLatency& latency() const { return latency_; }

  /// Copy of the sampler's time-series ring, oldest first (empty when the
  /// sampler is disabled or compiled out).
  std::vector<ServeSample> samples() const;

  /// Context JSON attached to flight-recorder crash dumps: the latency
  /// section plus (best-effort, try-lock) live session gauges.  Safe to
  /// call from crash handlers on any thread.
  std::string flight_context_json() const;

private:
  struct Connection;
  /// How dispatch_control classified one input line.
  enum class ControlAction {
    NotControl, ///< a statement: feed it to the session
    Replied,    ///< control handled; `reply` holds the full response
    End,        ///< @end: caller finishes the session and closes
  };

  void accept_loop();
  void handle_connection(std::shared_ptr<Connection> conn);
  /// One complete input line: control (@...) or statement.  Returns false
  /// when the connection should close.
  bool handle_line(Connection& conn, std::string_view line,
                   std::string& reply);
  /// The single control-line dispatcher both transports share (stdin and
  /// socket).  `fold` is a session whose counters are not published as a
  /// connection (the stdin session): its live counters are summed into
  /// the reported totals.
  ControlAction dispatch_control(std::string_view line,
                                 const StreamSession* fold,
                                 std::string& reply);
  ServeStats stats(const StreamSession* fold) const;
  std::string metrics_json(const StreamSession* fold) const;
  std::string health_json(const StreamSession* fold) const;
  std::string prometheus_text(const StreamSession* fold) const;
  /// The "latency" section body (deterministic counts + strippable
  /// "timing" subobjects).
  std::string latency_section_json() const;
  void publish(Connection& conn, bool active);
  std::string result_json(const StreamSession& session) const;
  void sampler_start();
  void sampler_stop();

  ServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Connection>> conns_;
  SessionCounters finished_totals_;
  std::uint64_t sessions_total_ = 0;
  std::uint64_t sessions_completed_ = 0;
  std::uint64_t sessions_failed_ = 0;
  std::chrono::steady_clock::time_point start_time_;

  /// Shared latency sink (ServerOptions::session.latency points here, so
  /// every session — socket or stdin — records into it wait-free).
  SessionLatency latency_;

#if VISRT_FLIGHT
  /// Sampler state: a bounded ring of ServeSample, guarded by mu_.
  std::thread sampler_thread_;
  std::vector<ServeSample> samples_;
  std::size_t samples_next_ = 0;
  std::uint64_t samples_taken_ = 0;
  void sampler_loop();
#endif
};

} // namespace visrt::serve
