#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "obs/profile.h"

namespace visrt::serve {

using fuzz::ProgramSpec;
using fuzz::StreamItem;
using fuzz::VisprogStatement;

StreamSession::StreamSession(SessionOptions options)
    : options_(std::move(options)), value_hash_(kFnvOffsetBasis) {
  if (options_.latency != nullptr) {
    latency_ = options_.latency;
  } else {
    owned_latency_ = std::make_unique<SessionLatency>();
    latency_ = owned_latency_.get();
  }
  obs::flight_record(obs::FlightKind::SessionBegin);
}

StreamSession::~StreamSession() = default;

void StreamSession::feed(std::string_view bytes) {
  require(!finished_, "feed after finish on a streaming session");
  parser_.feed(bytes);
  VisprogStatement st;
  for (;;) {
    fuzz::VisprogStreamParser::Status status;
    const std::uint64_t parse_begin = obs::prof_now_ns();
    try {
      status = parser_.next(st);
    } catch (const ApiError& e) {
      // Malformed line: the parser already consumed it and stays usable.
      ++counters_.rejected;
      if (options_.on_error) options_.on_error(e.what());
      continue;
    }
    if (status != fuzz::VisprogStreamParser::Status::Statement) break;
    latency_->statement_parse.record(obs::prof_now_ns() - parse_begin);
    apply(st);
  }
}

void StreamSession::finish() {
  if (finished_) return;
  parser_.finish();
  feed_tail();
  finished_ = true;

  if (trace_depth_ != 0) {
    ++counters_.rejected;
    if (options_.on_error)
      options_.on_error("stream ended inside an open trace");
  }
  // Sessions that declared fields but never launched still observe them.
  if (runtime_ == nullptr && !spec_.fields.empty()) instantiate();

  if (runtime_ != nullptr) {
    // Mirror the batch oracle exactly: trailing per-field observes with no
    // intervening iteration close, so the emitted work graph — and with it
    // the schedule hash — is bit-identical to fuzz::run_program.  Without
    // value tracking there is nothing to observe (and the schedule hash
    // accordingly covers the launch stream only).
    if (options_.track_values) {
      for (std::size_t f = 0; f < spec_.fields.size(); ++f) {
        RegionData<double> data = runtime_->observe(
            regions_[spec_.fields[f].tree], static_cast<FieldID>(f));
        result_.final_hashes.push_back(fuzz::hash_region(data));
      }
    }
    result_.dep_graph_hash = runtime_->dep_graph().stream_hash();
    result_.schedule_hash = runtime_->schedule_hash();
    // Ingested launches, not dep_graph().task_count(): the trailing
    // observes above get task ids too (in both the batch and stream
    // paths), but they are not part of the launch stream.
    result_.launches = counters_.launches;
    result_.dep_edges = runtime_->dep_graph().edge_count();
    if (verifier_ != nullptr) {
      // The trailing observes get launch records too — check them like
      // the batch spy would.
      drain_verify();
      result_.verify = verifier_->report(*runtime_);
    }
  }
  if (options_.track_values) result_.value_hash = value_hash_;
  obs::flight_record(obs::FlightKind::SessionEnd, counters_.launches,
                     counters_.statements);
}

void StreamSession::feed_tail() {
  // Drain statements that became parseable when finish() flushed the
  // final unterminated line.
  VisprogStatement st;
  for (;;) {
    fuzz::VisprogStreamParser::Status status;
    const std::uint64_t parse_begin = obs::prof_now_ns();
    try {
      status = parser_.next(st);
    } catch (const ApiError& e) {
      ++counters_.rejected;
      if (options_.on_error) options_.on_error(e.what());
      continue;
    }
    if (status != fuzz::VisprogStreamParser::Status::Statement) break;
    latency_->statement_parse.record(obs::prof_now_ns() - parse_begin);
    apply(st);
  }
}

void StreamSession::apply(const VisprogStatement& st) {
  try {
    switch (st.kind) {
    case VisprogStatement::Kind::Header: break;
    case VisprogStatement::Kind::Config:
    case VisprogStatement::Kind::Tuning:
    case VisprogStatement::Kind::Threads:
    case VisprogStatement::Kind::ShardBatch:
    case VisprogStatement::Kind::Tree:
    case VisprogStatement::Kind::Partition:
    case VisprogStatement::Kind::Field: apply_decl(st); break;
    case VisprogStatement::Kind::Item: {
      if (runtime_ == nullptr) instantiate();
      int depth = trace_depth_;
      fuzz::validate_item(spec_, st.item, depth);
      apply_item(st.item);
      trace_depth_ = depth;
      break;
    }
    }
    ++counters_.statements;
  } catch (const ApiError& e) {
    ++counters_.rejected;
    if (options_.on_error) options_.on_error(e.what());
  }
}

void StreamSession::apply_decl(const VisprogStatement& st) {
  require(runtime_ == nullptr,
          "declarations and configuration must precede the launch stream");
  // Apply to a scratch copy and validate, so a rejected declaration
  // leaves the mirror untouched (tables are tiny; the copy is cheap).
  // Before the first tree arrives the mirror is an incomplete prefix that
  // full validate_decls would reject ("needs at least one tree"), so only
  // the machine shape is checked; everything is re-validated in full at
  // instantiate().
  ProgramSpec probe = spec_;
  fuzz::apply_statement(probe, st);
  if (probe.trees.empty())
    require(probe.num_nodes >= 1, "visprog: machine needs at least one node");
  else
    fuzz::validate_decls(probe);
  spec_ = std::move(probe);
}

void StreamSession::instantiate() {
  fuzz::validate_decls(spec_);
  RuntimeConfig config;
  config.algorithm = options_.subject.value_or(spec_.subject);
  config.tuning = spec_.tuning;
  config.dcr = spec_.dcr;
  config.enable_tracing = spec_.tracing;
  config.track_values = options_.track_values;
  config.analysis_threads = options_.analysis_threads != 0
                                ? options_.analysis_threads
                                : spec_.analysis_threads;
  config.shard_batch =
      options_.shard_batch != 0 ? options_.shard_batch : spec_.shard_batch;
  config.machine.num_nodes = spec_.num_nodes;
  config.max_history_depth = options_.max_history_depth;
  config.launch_latency = &latency_->launch_analysis;
  // Inline verification needs the launch log (ground-truth interference)
  // and the order-maintenance labels (O(1) transitive order).
  config.record_launches = options_.verify;
  config.order_queries = options_.verify;
  runtime_ = std::make_unique<Runtime>(config);
  if (options_.verify)
    verifier_ = std::make_unique<analysis::IncrementalVerifier>();

  for (const fuzz::TreeSpec& tree : spec_.trees)
    regions_.push_back(
        runtime_->create_region(IntervalSet(0, tree.size - 1), tree.name));
  for (const fuzz::PartitionSpec& part : spec_.partitions) {
    PartitionHandle ph = runtime_->create_partition(
        regions_[part.parent], part.subspaces, part.name);
    partitions_.push_back(ph);
    for (std::size_t c = 0; c < part.subspaces.size(); ++c)
      regions_.push_back(runtime_->subregion(ph, c));
  }
  for (std::size_t f = 0; f < spec_.fields.size(); ++f) {
    const fuzz::FieldSpec& field = spec_.fields[f];
    coord_t mod = field.init_mod;
    FieldID id = runtime_->add_field(
        regions_[field.tree], field.name,
        [mod](coord_t p) { return static_cast<double>(p % mod); });
    invariant(id == static_cast<FieldID>(f),
              "field-table index must equal the runtime FieldID");
  }
}

void StreamSession::apply_item(const StreamItem& item) {
  switch (item.kind) {
  case StreamItem::Kind::Task: {
    TaskLaunch launch;
    launch.name = "fuzz";
    launch.mapped_node = item.task.mapped_node;
    coord_t work = 0;
    for (const fuzz::ReqSpec& req : item.task.requirements) {
      launch.requirements.push_back(
          RegionReq{regions_[req.region], req.field, req.privilege});
      work += fuzz::region_domain(spec_, req.region).volume();
    }
    launch.work_items = work;
    launch.fn = [this, &item](TaskContext& ctx) {
      body(ctx, item.task.requirements, item.task.salt);
    };
    LaunchID id = runtime_->launch(std::move(launch));
    obs::flight_record(obs::FlightKind::Launch, id, counters_.statements);
    invariant(id == next_expected_, "launch id misaligned with the stream");
    ++next_expected_;
    ++counters_.launches;
    ++launches_since_retire_;
    break;
  }
  case StreamItem::Kind::Index: {
    IndexLaunch launch;
    launch.name = "fuzz-index";
    coord_t work = 0;
    for (const fuzz::IndexReqSpec& req : item.index.requirements) {
      launch.requirements.push_back(
          IndexReq{partitions_[req.partition], req.field, req.privilege});
      work += fuzz::region_domain(spec_, req.partition).volume();
    }
    launch.work_items = work;
    launch.fn = [this, &item](TaskContext& ctx, std::size_t point) {
      // Per-point requirements, exactly as expand_stream flattens them.
      std::vector<fuzz::ReqSpec> reqs;
      reqs.reserve(item.index.requirements.size());
      for (const fuzz::IndexReqSpec& req : item.index.requirements) {
        reqs.push_back(fuzz::ReqSpec{
            fuzz::region_table_base(spec_, req.partition) +
                static_cast<std::uint32_t>(point),
            req.field, req.privilege});
      }
      body(ctx, reqs, item.index.salt);
    };
    std::vector<LaunchID> ids = runtime_->index_launch(launch);
    for (LaunchID id : ids) {
      obs::flight_record(obs::FlightKind::Launch, id, counters_.statements);
      invariant(id == next_expected_, "launch id misaligned with the stream");
      ++next_expected_;
    }
    counters_.launches += ids.size();
    launches_since_retire_ += ids.size();
    break;
  }
  case StreamItem::Kind::BeginTrace:
    runtime_->begin_trace(item.trace_id);
    break;
  case StreamItem::Kind::EndTrace: runtime_->end_trace(); break;
  case StreamItem::Kind::EndIteration:
    runtime_->end_iteration();
    ++counters_.iterations;
    break;
  }
  if (options_.inject_check_failure_after != 0 &&
      counters_.launches >= options_.inject_check_failure_after) {
    // Test hook: exercises the check-failure hook -> flight dump path with
    // real launch breadcrumbs in the ring.
    invariant_failure("injected check failure (serve telemetry test hook)");
  }
  // Verify before retirement can reclaim this item's interference
  // partners (the verifier indexes launches while they are resident).
  drain_verify();
  maybe_retire(false);
  note_residency();
}

void StreamSession::drain_verify() {
  if (verifier_ == nullptr || runtime_ == nullptr) return;
  const std::size_t before = verifier_->peek().violations.size();
  verifier_->drain(*runtime_);
  const analysis::SpyReport& tally = verifier_->peek();
  counters_.verified_launches = verifier_->drained();
  counters_.verify_violations = tally.unordered_pairs + tally.imprecise_edges;
  if (options_.on_error) {
    for (std::size_t i = before; i < tally.violations.size(); ++i) {
      const analysis::SpyViolation& v = tally.violations[i];
      options_.on_error(
          std::string("verify: ") +
          analysis::spy_violation_kind_name(v.kind) + ": launch " +
          std::to_string(v.earlier) + " vs " + std::to_string(v.later) +
          ": " + v.detail);
    }
  }
}

void StreamSession::maybe_retire(bool force) {
  if (runtime_ == nullptr) return;
  if (retire_backoff_ > 0) --retire_backoff_;
  const bool over_cap =
      options_.max_resident_launches != 0 &&
      runtime_->resident_launches() > options_.max_resident_launches;
  const bool interval_due = options_.retire_every != 0 &&
                            launches_since_retire_ >= options_.retire_every;
  if (!force && !interval_due && !(over_cap && retire_backoff_ == 0)) return;
  const std::uint64_t retire_begin = obs::prof_now_ns();
  RetireStats r = runtime_->retire(options_.max_dead_eqsets);
  latency_->retire_pause.record(obs::prof_now_ns() - retire_begin);
  obs::flight_record(obs::FlightKind::RetireEpoch, counters_.retire_calls + 1,
                     runtime_->resident_launches());
  ++counters_.retire_calls;
  counters_.retired_launches += r.retired_launches;
  counters_.retired_ops += r.retired_ops;
  counters_.eqset_slots_reclaimed += r.eqset_slots_reclaimed;
  launches_since_retire_ = 0;
  // A stream whose live analysis tail exceeds the cap cannot be drained
  // by retiring harder: back off so the over-cap trigger does not degrade
  // into a (quadratic) full retire per ingested launch.
  retire_backoff_ = options_.max_resident_launches != 0 &&
                            runtime_->resident_launches() >
                                options_.max_resident_launches
                        ? 64
                        : 0;
}

void StreamSession::note_residency() {
  if (runtime_ == nullptr) return;
  counters_.peak_resident_launches =
      std::max<std::uint64_t>(counters_.peak_resident_launches,
                              runtime_->resident_launches());
  counters_.peak_resident_ops = std::max<std::uint64_t>(
      counters_.peak_resident_ops, runtime_->work_graph().resident_ops());
}

void StreamSession::body(TaskContext& ctx,
                         std::span<const fuzz::ReqSpec> reqs,
                         std::uint64_t salt) {
  std::uint64_t launch_hash = kFnvOffsetBasis;
  std::vector<RegionData<double>*> buffers;
  buffers.reserve(ctx.region_count());
  for (std::size_t i = 0; i < ctx.region_count(); ++i) {
    launch_hash = fnv1a_u64(launch_hash, fuzz::hash_region(ctx.data(i)));
    buffers.push_back(&ctx.data(i));
  }
  value_hash_ = fnv1a_u64(value_hash_, launch_hash);
  fuzz::apply_task_body(reqs, buffers, ctx.launch_id(), salt);
}

std::uint64_t fold_value_hashes(std::span<const std::uint64_t> hashes) {
  std::uint64_t h = kFnvOffsetBasis;
  for (std::uint64_t v : hashes) h = fnv1a_u64(h, v);
  return h;
}

} // namespace visrt::serve
