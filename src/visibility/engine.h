// visrt/visibility/engine.h
//
// The common framework of Section 4: every coherence algorithm provides
// `materialize` and `commit` plus an implementation of the runtime state S.
// A CoherenceEngine is that triple for all fields of all region trees of
// one runtime.
//
// Engines do two jobs at once:
//   1. Semantics: produce the current values of a requested region
//      (materialize), record task results (commit), and report the prior
//      launches the requesting task depends on.
//   2. Accounting: report *where* (which node owns the metadata touched)
//      and *how much* work each step performed, as AnalysisSteps, so the
//      runtime can attribute analysis time and messages onto the simulated
//      machine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "region/region_data.h"
#include "region/region_tree.h"
#include "sim/cost_model.h"
#include "visibility/privilege.h"

namespace visrt {

/// One region requirement of a task launch: a region (by handle), one
/// field, and the privilege the task holds on it.
struct Requirement {
  RegionHandle region;
  FieldID field = 0;
  Privilege privilege;
};

/// Identity of one analyzed launch: the task (the paper's global clock),
/// the node the task is mapped to (first-touch owner for new metadata),
/// and the node performing the analysis (node 0 without DCR; the owning
/// shard with DCR).
struct AnalysisContext {
  LaunchID task = kInvalidLaunch;
  NodeID mapped_node = 0;
  NodeID analysis_node = 0;
};

/// Work counters for one analysis step; converted to CPU nanoseconds by the
/// simulator's cost model.
struct AnalysisCounters {
  std::uint64_t history_entries = 0;     ///< history entries examined
  std::uint64_t composite_child_tests = 0;
  std::uint64_t composite_captures = 0;  ///< node histories captured
  std::uint64_t eqset_refines = 0;       ///< equivalence-set splits
  std::uint64_t refine_intervals = 0;    ///< domain intervals restricted
  std::uint64_t eqset_visits = 0;        ///< equivalence sets touched
  std::uint64_t accel_nodes = 0;         ///< BVH / K-d nodes traversed
  std::uint64_t interval_ops = 0;        ///< interval-set algebra intervals
  std::uint64_t eqsets_created = 0;
  std::uint64_t eqsets_pruned = 0;

  SimTime cpu_ns(const sim::CostModel& m) const {
    return static_cast<SimTime>(
        history_entries * static_cast<std::uint64_t>(m.history_entry_ns) +
        composite_child_tests *
            static_cast<std::uint64_t>(m.composite_child_test_ns) +
        composite_captures *
            static_cast<std::uint64_t>(m.composite_capture_ns) +
        eqset_refines * static_cast<std::uint64_t>(m.eqset_refine_ns) +
        refine_intervals * static_cast<std::uint64_t>(m.refine_interval_ns) +
        eqset_visits * static_cast<std::uint64_t>(m.eqset_visit_ns) +
        accel_nodes * static_cast<std::uint64_t>(m.accel_node_ns) +
        interval_ops * static_cast<std::uint64_t>(m.interval_op_ns) +
        eqsets_created * static_cast<std::uint64_t>(m.eqset_create_ns) +
        eqsets_pruned * static_cast<std::uint64_t>(m.eqset_prune_ns));
  }

  AnalysisCounters& operator+=(const AnalysisCounters& o) {
    history_entries += o.history_entries;
    composite_child_tests += o.composite_child_tests;
    composite_captures += o.composite_captures;
    eqset_refines += o.eqset_refines;
    refine_intervals += o.refine_intervals;
    eqset_visits += o.eqset_visits;
    accel_nodes += o.accel_nodes;
    interval_ops += o.interval_ops;
    eqsets_created += o.eqsets_created;
    eqsets_pruned += o.eqsets_pruned;
    return *this;
  }
};

/// One unit of analysis work attributed to the node that owns the metadata
/// it touched.  Steps on nodes other than the analyzing node cost a
/// round-trip message pair in the simulation.
struct AnalysisStep {
  NodeID owner = 0;
  AnalysisCounters counters;
  std::uint64_t meta_bytes = 0; ///< metadata shipped back (views, histories)
};

/// Result of materializing one requirement.
struct MaterializeResult {
  /// Current values over the requirement's domain (read / read-write), or
  /// identity-filled values (reduce).  Empty when value tracking is off.
  RegionData<double> data;
  /// Launches the requesting task depends on (sorted, unique).
  std::vector<LaunchID> dependences;
  /// Attributed analysis work.
  std::vector<AnalysisStep> steps;
};

/// Aggregate engine state counters, reported by the benchmarks.
struct EngineStats {
  std::size_t live_eqsets = 0;
  std::size_t total_eqsets_created = 0;
  std::size_t live_composite_views = 0;
  std::size_t total_composite_views = 0;
  std::size_t history_entries = 0;
};

/// The three algorithms of the paper, plus the naive pseudocode versions
/// (Figures 7, 9, 11) and the sequential oracle used for testing.
enum class Algorithm {
  Paint,
  Warnock,
  RayCast,
  NaivePaint,
  NaiveWarnock,
  NaiveRayCast,
  Reference,
};

const char* algorithm_name(Algorithm a);

struct EngineConfig {
  /// Track and return actual region values.  Off for analysis-only
  /// benchmark runs where only dependences / costs matter.
  bool track_values = true;
  /// Forest the requirements' region handles resolve against (non-owning;
  /// must outlive the engine).
  const RegionTreeForest* forest = nullptr;
};

class CoherenceEngine {
public:
  virtual ~CoherenceEngine() = default;

  /// Register a field on a root region with its initial contents: the
  /// paper's initial state [<read-write, A>].  `home` is the node that
  /// initially owns the metadata (and the data).
  virtual void initialize_field(RegionHandle root, FieldID field,
                                RegionData<double> initial, NodeID home) = 0;

  /// Compute the current contents of the requirement's region and the
  /// dependences of the launch described by `ctx`.
  virtual MaterializeResult materialize(const Requirement& req,
                                        const AnalysisContext& ctx) = 0;

  /// Record the task's committed region contents into the state.
  /// `result` is ignored when value tracking is off.
  virtual std::vector<AnalysisStep> commit(const Requirement& req,
                                           const RegionData<double>& result,
                                           const AnalysisContext& ctx) = 0;

  virtual EngineStats stats() const = 0;
};

/// Factory for all algorithm variants.
std::unique_ptr<CoherenceEngine> make_engine(Algorithm algorithm,
                                             const EngineConfig& config);

} // namespace visrt
