// visrt/visibility/engine.h
//
// The common framework of Section 4: every coherence algorithm provides
// `materialize` and `commit` plus an implementation of the runtime state S.
// A CoherenceEngine is that triple for all fields of all region trees of
// one runtime.
//
// Engines do two jobs at once:
//   1. Semantics: produce the current values of a requested region
//      (materialize), record task results (commit), and report the prior
//      launches the requesting task depends on.
//   2. Accounting: report *where* (which node owns the metadata touched)
//      and *how much* work each step performed, as AnalysisSteps, so the
//      runtime can attribute analysis time and messages onto the simulated
//      machine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "obs/counters.h"
#include "obs/provenance.h"
#include "region/region_data.h"
#include "region/region_tree.h"
#include "sim/cost_model.h"
#include "visibility/privilege.h"

namespace visrt {

class Executor;

namespace obs {
class Recorder;
class LifecycleLedger;
class Profiler;
} // namespace obs

/// One region requirement of a task launch: a region (by handle), one
/// field, and the privilege the task holds on it.
struct Requirement {
  RegionHandle region;
  FieldID field = 0;
  Privilege privilege;
  friend bool operator==(const Requirement&, const Requirement&) = default;
};

/// Identity of one analyzed launch: the task (the paper's global clock),
/// the node the task is mapped to (first-touch owner for new metadata),
/// and the node performing the analysis (node 0 without DCR; the owning
/// shard with DCR).
struct AnalysisContext {
  LaunchID task = kInvalidLaunch;
  NodeID mapped_node = 0;
  NodeID analysis_node = 0;
};

// AnalysisCounters and AnalysisStep moved to obs/counters.h so the
// telemetry layer can capture them without depending on the engines.

/// Result of materializing one requirement.
struct MaterializeResult {
  /// Current values over the requirement's domain (read / read-write), or
  /// identity-filled values (reduce).  Empty when value tracking is off.
  RegionData<double> data;
  /// Launches the requesting task depends on (sorted, unique).
  std::vector<LaunchID> dependences;
  /// Attributed analysis work.
  std::vector<AnalysisStep> steps;
  /// Per-dependence provenance (EngineConfig::provenance only).  One entry
  /// per *emission*, so a launch found through several sets may appear more
  /// than once; the runtime keeps the first record per edge.  The engine
  /// leaves `EdgeProvenance::engine` zero — the runtime stamps it.
  std::vector<obs::EdgeProvenance> provenance;
};

/// Aggregate engine state counters, reported by the benchmarks.
struct EngineStats {
  std::size_t live_eqsets = 0;
  std::size_t total_eqsets_created = 0;
  std::size_t live_composite_views = 0;
  std::size_t total_composite_views = 0;
  std::size_t history_entries = 0;
  /// Storage slots held for equivalence sets, live or collapsed (dead
  /// husks awaiting compact_husks).  0 when the engine doesn't report it.
  std::size_t resident_eqset_slots = 0;
  /// History entries whose value payloads were folded into a composite
  /// view (EngineConfig::max_history_depth); a subset of history_entries.
  std::size_t collapsed_entries = 0;
};

/// The three algorithms of the paper, plus the naive pseudocode versions
/// (Figures 7, 9, 11) and the sequential oracle used for testing.
enum class Algorithm {
  Paint,
  Warnock,
  RayCast,
  NaivePaint,
  NaiveWarnock,
  NaiveRayCast,
  Reference,
};

const char* algorithm_name(Algorithm a);

/// Algorithm-specific option knobs in factory-friendly form: one flat
/// struct covering every engine's ablation settings, so callers that pick
/// the algorithm at runtime (the Runtime config, the fuzzer's randomized
/// configurations) can carry one value.  make_engine forwards the relevant
/// subset to the engine's own Options struct; knobs for other engines are
/// ignored.
struct EngineTuning {
  bool paint_occlusion_pruning = true;   ///< PaintEngine::Options
  bool warnock_memoize = true;           ///< WarnockEngine::Options
  bool raycast_dominating_writes = true; ///< RayCastEngine::Options
  bool raycast_force_kd_fallback = false;
  /// Test-only: arm PaintEngine's synthetic bug (see
  /// PaintEngine::Options::inject_reduce_bug).  Used to validate that the
  /// fuzzer's differential oracle and shrinker actually catch and minimize
  /// engine defects; never enabled outside tests.
  bool inject_paint_reduce_bug = false;

  friend bool operator==(const EngineTuning&, const EngineTuning&) = default;
};

struct EngineConfig {
  /// Track and return actual region values.  Off for analysis-only
  /// benchmark runs where only dependences / costs matter.
  bool track_values = true;
  /// Per-algorithm option knobs (ablation settings + test hooks).
  EngineTuning tuning;
  /// Forest the requirements' region handles resolve against (non-owning;
  /// must outlive the engine).
  const RegionTreeForest* forest = nullptr;
  /// Telemetry recorder the engine opens phase spans on (non-owning; may
  /// be null or disabled, in which case every span is a single branch).
  obs::Recorder* recorder = nullptr;
  /// Analysis profiler the engine attributes wall time to (non-owning;
  /// may be null or disabled — then every ScopedPhase is a single
  /// branch).  Engines classify their sharded interference scans as
  /// ShardScan and the canonical-order slot merges as Merge.
  obs::Profiler* profiler = nullptr;
  /// Analysis executor (non-owning; may be null).  Engines shard their
  /// side-effect-free interference scans across it — per-shard results are
  /// merged in canonical order, so the emitted AnalysisSteps, counters and
  /// dependences are bit-identical to a null (sequential) executor.  All
  /// state mutation (refines, captures, painting, commits) stays on the
  /// calling thread.
  Executor* executor = nullptr;
  /// Capture per-edge provenance into MaterializeResult::provenance and
  /// report eq-set lifecycle events to `lifecycle`.  Folds away entirely
  /// when VISRT_PROVENANCE=0; otherwise one branch per emission site.
  bool provenance = false;
  /// Lifecycle ledger to report create/refine/coalesce/migrate events to
  /// (non-owning; may be null).  Only consulted when `provenance` is set.
  obs::LifecycleLedger* lifecycle = nullptr;
  /// Bounded-memory streaming: once a live equivalence set's history grows
  /// beyond this many entries, fold the value payloads of the older
  /// entries into one set-level composite view (the paper's
  /// painter's-algorithm GC), keeping their dependence skeletons.
  /// Dependences, counters and materialized values are bit-identical to
  /// the uncollapsed history; only value-payload residency shrinks.
  /// 0 = never collapse.  Currently honored by RayCast.
  std::size_t max_history_depth = 0;
  /// Shard batch granularity for the engines' inner scans
  /// (RuntimeConfig::shard_batch): nonzero replaces each scan's tuned
  /// grain — 1 forces the finest sharding, larger-than-work runs inline.
  /// Results are bit-identical across every value.
  std::size_t shard_batch = 0;
};

class CoherenceEngine {
public:
  virtual ~CoherenceEngine() = default;

  /// Register a field on a root region with its initial contents: the
  /// paper's initial state [<read-write, A>].  `home` is the node that
  /// initially owns the metadata (and the data).
  virtual void initialize_field(RegionHandle root, FieldID field,
                                RegionData<double> initial, NodeID home) = 0;

  /// Compute the current contents of the requirement's region and the
  /// dependences of the launch described by `ctx`.
  virtual MaterializeResult materialize(const Requirement& req,
                                        const AnalysisContext& ctx) = 0;

  /// Record the task's committed region contents into the state.
  /// `result` is ignored when value tracking is off.
  virtual std::vector<AnalysisStep> commit(const Requirement& req,
                                           const RegionData<double>& result,
                                           const AnalysisContext& ctx) = 0;

  virtual EngineStats stats() const = 0;

  /// Retirement watermark: a launch id W such that no *future* materialize
  /// can ever report a dependence on a launch < W (because every retained
  /// history entry's writer/reader ids are >= W).  The runtime uses it to
  /// retire dep-graph prefixes.  kInvalidLaunch means "no retained entry
  /// constrains retirement at all"; the conservative default, 0, disables
  /// launch retirement for engines that don't implement it.
  virtual LaunchID retire_watermark() const { return 0; }

  /// Collapse storage held by dead (already-coalesced) equivalence-set
  /// husks once more than `max_dead` of them are resident; returns the
  /// number of slots reclaimed.  Analysis results are unaffected — only
  /// internal numbering of *future* eq-sets may shift.  Default: engines
  /// without husk storage reclaim nothing.
  virtual std::size_t compact_husks(std::size_t max_dead) {
    (void)max_dead;
    return 0;
  }
};

/// Factory for all algorithm variants.
std::unique_ptr<CoherenceEngine> make_engine(Algorithm algorithm,
                                             const EngineConfig& config);

} // namespace visrt
