// visrt/visibility/reference.h
//
// The sequential oracle: executes the task stream against a single master
// copy of every field in program order, exactly as the apparently-
// sequential semantics of Section 3.1 defines (the blending function B over
// the operation sequence).  Dependence analysis is the naive O(n) scan of
// all prior operations.  Every other engine must agree with this one; it is
// the ground truth for the cross-algorithm property tests.
#pragma once

#include <unordered_map>
#include <vector>

#include "visibility/engine.h"
#include "visibility/history.h"

namespace visrt {

class ReferenceEngine final : public CoherenceEngine {
public:
  explicit ReferenceEngine(const EngineConfig& config) : config_(config) {}

  void initialize_field(RegionHandle root, FieldID field,
                        RegionData<double> initial, NodeID home) override;
  MaterializeResult materialize(const Requirement& req,
                                const AnalysisContext& ctx) override;
  std::vector<AnalysisStep> commit(const Requirement& req,
                                   const RegionData<double>& result,
                                   const AnalysisContext& ctx) override;
  EngineStats stats() const override;

private:
  struct OpRecord {
    LaunchID task;
    Privilege priv;
    IntervalSet dom;
  };
  struct FieldState {
    RegionHandle root;
    NodeID home = 0;
    RegionData<double> master; ///< current value of every point
    std::vector<OpRecord> ops; ///< all operations, in program order
  };

  EngineConfig config_;
  std::unordered_map<FieldID, FieldState> fields_;
};

} // namespace visrt
