// visrt/visibility/dep_graph.h
//
// The dependence DAG produced by an analysis run: nodes are launches, edges
// point from a prior task to a later task that must observe its effects.
// Used by the runtime to order task executions in the work graph, and by
// the tests to check soundness (every interfering pair is transitively
// ordered) and precision (non-interfering pairs are not directly ordered).
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/provenance.h"

namespace visrt {

class RegionTreeForest;

class DepGraph {
public:
  /// Register a launch (ids must be registered in increasing order).
  void add_task(LaunchID id);

  /// Add edges from each of `froms` to `to`; duplicates are ignored.
  void add_edges(LaunchID to, std::span<const LaunchID> froms);

  std::size_t task_count() const { return preds_.size(); }
  std::size_t edge_count() const { return edges_; }

  /// Direct predecessors of a launch.
  std::span<const LaunchID> preds(LaunchID id) const;

  /// Is there a direct edge from -> to?
  bool has_edge(LaunchID from, LaunchID to) const;

  /// Is `from` ordered before `to` through any path?
  bool reaches(LaunchID from, LaunchID to) const;

  /// Length (in tasks) of the longest chain — the analysis' view of the
  /// critical path; a measure of how much parallelism was discovered.
  std::size_t critical_path() const;

#if VISRT_PROVENANCE
  /// Attach provenance to the edge from -> to.  First record wins (an edge
  /// may be emitted several times through different sets); the edge itself
  /// need not be registered yet — add_edges happens after the merge.
  void set_provenance(LaunchID from, LaunchID to,
                      const obs::EdgeProvenance& prov);
  /// Provenance of the edge from -> to, or nullptr if none was recorded.
  const obs::EdgeProvenance* provenance(LaunchID from, LaunchID to) const;
  std::size_t provenance_count() const { return prov_.size(); }
#else
  void set_provenance(LaunchID, LaunchID, const obs::EdgeProvenance&) {}
  const obs::EdgeProvenance* provenance(LaunchID, LaunchID) const {
    return nullptr;
  }
  std::size_t provenance_count() const { return 0; }
#endif

private:
  std::vector<std::vector<LaunchID>> preds_; // indexed by LaunchID
  std::size_t edges_ = 0;
  std::map<std::pair<LaunchID, LaunchID>, obs::EdgeProvenance> prov_;
};

#if VISRT_PROVENANCE
/// One-line human rendering of an edge's provenance, resolving the region
/// index against the forest: "warnock eqset-visit via eqset 3 on
/// field 1 @ nodes[1] (read-write -> read)".  The engine name comes from
/// the stamped Algorithm value.
std::string describe_provenance(const obs::EdgeProvenance& prov,
                                const RegionTreeForest& forest);
#endif

} // namespace visrt
