// visrt/visibility/dep_graph.h
//
// The dependence DAG produced by an analysis run: nodes are launches, edges
// point from a prior task to a later task that must observe its effects.
// Used by the runtime to order task executions in the work graph, and by
// the tests to check soundness (every interfering pair is transitively
// ordered) and precision (non-interfering pairs are not directly ordered).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace visrt {

class DepGraph {
public:
  /// Register a launch (ids must be registered in increasing order).
  void add_task(LaunchID id);

  /// Add edges from each of `froms` to `to`; duplicates are ignored.
  void add_edges(LaunchID to, std::span<const LaunchID> froms);

  std::size_t task_count() const { return preds_.size(); }
  std::size_t edge_count() const { return edges_; }

  /// Direct predecessors of a launch.
  std::span<const LaunchID> preds(LaunchID id) const;

  /// Is there a direct edge from -> to?
  bool has_edge(LaunchID from, LaunchID to) const;

  /// Is `from` ordered before `to` through any path?
  bool reaches(LaunchID from, LaunchID to) const;

  /// Length (in tasks) of the longest chain — the analysis' view of the
  /// critical path; a measure of how much parallelism was discovered.
  std::size_t critical_path() const;

private:
  std::vector<std::vector<LaunchID>> preds_; // indexed by LaunchID
  std::size_t edges_ = 0;
};

} // namespace visrt
