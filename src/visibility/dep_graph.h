// visrt/visibility/dep_graph.h
//
// The dependence DAG produced by an analysis run: nodes are launches, edges
// point from a prior task to a later task that must observe its effects.
// Used by the runtime to order task executions in the work graph, and by
// the tests to check soundness (every interfering pair is transitively
// ordered) and precision (non-interfering pairs are not directly ordered).
//
// For unbounded streams the graph supports *prefix retirement*: once the
// engine proves no future edge can target launches below a watermark
// (Runtime::retire), `retire_prefix` drops their predecessor lists.
// Launch ids stay stable, aggregate counts (task_count, edge_count,
// critical_path) remain whole-stream totals, and `stream_hash` folds every
// task and edge as it arrives — so the hash of a retired run is
// bit-identical to the batch run's by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/order_maintenance.h"
#include "common/types.h"
#include "obs/provenance.h"

namespace visrt {

class RegionTreeForest;

class DepGraph {
public:
  /// Register a launch (ids must be registered in increasing order).
  void add_task(LaunchID id);

  /// Add edges from each of `froms` to `to`; duplicates are ignored.
  void add_edges(LaunchID to, std::span<const LaunchID> froms);

  /// Total launches ever registered; resident ids are [base(), task_count()).
  std::size_t task_count() const { return base_ + preds_.size(); }
  std::size_t edge_count() const { return edges_; }
  /// First resident launch (0 until the first retire_prefix call).
  LaunchID base() const { return base_; }

  /// Drop predecessor lists (and edge provenance) of launches below
  /// `new_base`.  The caller must guarantee no future add_edges call will
  /// name a retired launch as a source.
  void retire_prefix(LaunchID new_base);

  /// Direct predecessors of a resident launch.  Retired launches' lists
  /// are gone; predecessors of resident launches may still name retired
  /// ids (edges into the retired prefix are kept on the resident side).
  std::span<const LaunchID> preds(LaunchID id) const;

  /// Is there a direct edge from -> to?  `to` must be resident.
  bool has_edge(LaunchID from, LaunchID to) const;

  /// Is `from` ordered before `to` through any path?  Both must be
  /// resident (every intermediate node of such a path then is too).
  /// Backward DFS by default; O(1) once enable_order_queries is on.
  bool reaches(LaunchID from, LaunchID to) const;

  /// Attach an order-maintenance structure (common/order_maintenance.h):
  /// replays the resident window, then shadows every add_task / add_edges /
  /// retire_prefix, turning `reaches` into an O(1) label compare.
  /// Idempotent; adds O(resident * chain-width) memory.
  void enable_order_queries();
  bool order_queries_enabled() const { return order_.has_value(); }

  /// The attached order structure (enable_order_queries must have run).
  const OrderMaintenance& order() const;

  /// Length (in tasks) of the longest chain — the analysis' view of the
  /// critical path; a measure of how much parallelism was discovered.
  /// Maintained incrementally, so it covers the whole stream even after
  /// retirement.
  std::size_t critical_path() const { return best_depth_; }

  /// Rolling FNV-1a fold of the stream: each add_task folds its id term,
  /// each add_edges folds the task's final sorted predecessor list.  With
  /// the runtime's one-add_edges-per-launch discipline this equals the
  /// batch fold over (id, sorted preds) pairs in id order, independent of
  /// retirement.
  std::uint64_t stream_hash() const { return stream_hash_; }

#if VISRT_PROVENANCE
  /// Attach provenance to the edge from -> to.  First record wins (an edge
  /// may be emitted several times through different sets); the edge itself
  /// need not be registered yet — add_edges happens after the merge.
  void set_provenance(LaunchID from, LaunchID to,
                      const obs::EdgeProvenance& prov);
  /// Provenance of the edge from -> to, or nullptr if none was recorded.
  const obs::EdgeProvenance* provenance(LaunchID from, LaunchID to) const;
  std::size_t provenance_count() const { return prov_.size(); }
#else
  void set_provenance(LaunchID, LaunchID, const obs::EdgeProvenance&) {}
  const obs::EdgeProvenance* provenance(LaunchID, LaunchID) const {
    return nullptr;
  }
  std::size_t provenance_count() const { return 0; }
#endif

private:
  /// Predecessor lists live in an arena (one allocation per finalized
  /// list, no per-edge malloc): add_edges merges into merge_scratch_ and
  /// persists the result with one copy_span; retire_prefix compacts the
  /// survivors into a fresh arena, releasing the retired lists' memory.
  Arena arena_;
  std::vector<LaunchID> merge_scratch_;
  std::vector<std::span<LaunchID>> preds_; // indexed by LaunchID - base_
  std::vector<std::size_t> depth_;         // longest chain ending at id
  LaunchID base_ = 0;
  std::size_t edges_ = 0;
  std::size_t best_depth_ = 0;
  std::uint64_t stream_hash_ = kFnvOffsetBasis;
  std::optional<OrderMaintenance> order_;
  std::map<std::pair<LaunchID, LaunchID>, obs::EdgeProvenance> prov_;
};

#if VISRT_PROVENANCE
/// One-line human rendering of an edge's provenance, resolving the region
/// index against the forest: "warnock eqset-visit via eqset 3 on
/// field 1 @ nodes[1] (read-write -> read)".  The engine name comes from
/// the stamped Algorithm value.
std::string describe_provenance(const obs::EdgeProvenance& prov,
                                const RegionTreeForest& forest);
#endif

} // namespace visrt
