// visrt/visibility/naive.h
//
// Literal implementations of the paper's pseudocode:
//   - NaivePaintEngine    — Figure 7, the painter's algorithm over a flat
//                           history list.
//   - NaiveWarnockEngine  — Figure 9, equivalence sets refined on overlap.
//   - NaiveRayCastEngine  — Figure 11, Warnock plus dominating writes.
//
// These are unoptimized by design: no region-tree acceleration, no BVH, no
// memoization, single-owner metadata.  They serve as executable
// specifications that the optimized engines (paint.h, warnock.h,
// raycast.h) are tested against, and as the reference points for the
// ablation benchmarks.
#pragma once

#include <unordered_map>
#include <vector>

#include "visibility/engine.h"
#include "visibility/history.h"

namespace visrt {

namespace detail {
/// State common to the naive engines: per-field history or equivalence
/// sets, plus the home node all metadata lives on.
struct NaiveFieldState {
  RegionHandle root;
  NodeID home = 0;
  IntervalSet root_domain;
};
} // namespace detail

/// Figure 7: S is a flat list of <privilege, region> pairs.
class NaivePaintEngine final : public CoherenceEngine {
public:
  explicit NaivePaintEngine(const EngineConfig& config) : config_(config) {}

  void initialize_field(RegionHandle root, FieldID field,
                        RegionData<double> initial, NodeID home) override;
  MaterializeResult materialize(const Requirement& req,
                                const AnalysisContext& ctx) override;
  std::vector<AnalysisStep> commit(const Requirement& req,
                                   const RegionData<double>& result,
                                   const AnalysisContext& ctx) override;
  EngineStats stats() const override;

private:
  struct FieldState : detail::NaiveFieldState {
    std::vector<HistEntry> history;
  };
  EngineConfig config_;
  std::unordered_map<FieldID, FieldState> fields_;
};

/// Figure 9: S is a set of equivalence sets (region, history) with the
/// invariant that every history operation covers the whole set.
class NaiveWarnockEngine : public CoherenceEngine {
public:
  explicit NaiveWarnockEngine(const EngineConfig& config) : config_(config) {}

  void initialize_field(RegionHandle root, FieldID field,
                        RegionData<double> initial, NodeID home) override;
  MaterializeResult materialize(const Requirement& req,
                                const AnalysisContext& ctx) override;
  std::vector<AnalysisStep> commit(const Requirement& req,
                                   const RegionData<double>& result,
                                   const AnalysisContext& ctx) override;
  EngineStats stats() const override;

protected:
  struct EqSet {
    IntervalSet dom;
    std::vector<HistEntry> history;
  };
  struct FieldState : detail::NaiveFieldState {
    std::vector<EqSet> sets;
    /// Sets ever created on this field.  Kept per field (not engine-wide)
    /// so materialize calls on distinct fields never share mutable state —
    /// the invariant the runtime's per-field analysis sharding relies on.
    std::size_t sets_created = 0;
  };

  /// Figure 9 refine(): split sets that partially overlap `dom`.
  static void refine(FieldState& fs, const IntervalSet& dom,
                     AnalysisCounters& c, bool track_values);

  FieldState& field_state(const Requirement& req);

  EngineConfig config_;
  std::unordered_map<FieldID, FieldState> fields_;
};

/// Figure 11: Warnock's materialize/commit, plus dominating_write on
/// read-write materialization.
class NaiveRayCastEngine final : public NaiveWarnockEngine {
public:
  explicit NaiveRayCastEngine(const EngineConfig& config)
      : NaiveWarnockEngine(config) {}

  MaterializeResult materialize(const Requirement& req,
                                const AnalysisContext& ctx) override;
};

} // namespace visrt
