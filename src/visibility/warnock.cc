#include "visibility/warnock.h"

#include <algorithm>

#include "common/check.h"
#include "common/executor.h"
#include "obs/lifecycle.h"
#include "obs/profile.h"
#include "obs/recorder.h"

namespace visrt {

namespace {
/// Serialized size of one history entry shipped in a response.
constexpr std::uint64_t kEntryMetaBytes = 32;
/// Minimum constituent sets per shard when the visit scan forks onto the
/// analysis executor.
constexpr std::size_t kSetGrain = 8;
} // namespace

WarnockEngine::WarnockEngine(const EngineConfig& config)
    : WarnockEngine(config, Options{}) {}

void WarnockEngine::initialize_field(RegionHandle root, FieldID field,
                                     RegionData<double> initial,
                                     NodeID home) {
  FieldState fs;
  fs.root = root;
  fs.id = field;
  fs.home = home;
  EqSetNode eq;
  eq.dom = config_.forest->domain(root);
  eq.owner = home;
  HistEntry init;
  init.task = kInvalidLaunch;
  init.priv = Privilege::read_write();
  init.dom = eq.dom;
  init.owner = home;
  if (config_.track_values) {
    require(initial.domain() == eq.dom,
            "initial data must cover the root region");
    init.values = std::move(initial);
  }
  eq.history.push_back(std::move(init));
  fs.nodes.push_back(std::move(eq));
  fs.total_created = 1;
  fs.live = 1;
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle)
    config_.lifecycle->record(obs::LifecycleEventKind::Create, kInvalidLaunch,
                              field, 0, kNoEqSetID, home, fs.live);
  fields_.emplace(field, std::move(fs));
}

WarnockEngine::FieldState& WarnockEngine::field_state(FieldID field) {
  auto it = fields_.find(field);
  require(it != fields_.end(), "access to unregistered field");
  return it->second;
}

std::vector<std::uint32_t> WarnockEngine::lookup(FieldState& fs,
                                                 const Requirement& req,
                                                 const IntervalSet& dom,
                                                 AnalysisCounters& local) {
  // Entry points: memoized sets from the last use of this region, or the
  // refinement-tree root.  Refinement is monotone so memoized nodes are
  // always ancestors-or-equal of the current leaves.
  std::vector<std::uint32_t> stack;
  if (options_.memoize) {
    auto mit = fs.memo.find(req.region.index);
    if (mit != fs.memo.end()) stack = mit->second;
  }
  if (stack.empty()) stack.push_back(0);

  std::vector<std::uint32_t> leaves;
  while (!stack.empty()) {
    std::uint32_t id = stack.back();
    stack.pop_back();
    const EqSetNode& n = fs.nodes[id];
    // BVH traversal tests bounding volumes; the precise domain test is
    // charged as a single interval op (the common case rejects or accepts
    // on the bounds).
    ++local.accel_nodes;
    ++local.interval_ops;
    if (!n.dom.bounds().overlaps(dom.bounds())) continue;
    if (!n.dom.overlaps(dom)) continue;
    if (n.live) {
      leaves.push_back(id);
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  return leaves;
}

void WarnockEngine::refine_leaf(FieldState& fs, std::uint32_t id,
                                const IntervalSet& cut, NodeID inside_owner,
                                LaunchID launch,
                                std::vector<AnalysisStep>& steps) {
  EqSetNode& n = fs.nodes[id];
  invariant(n.live, "refining a non-live equivalence set");
  // The set's owner performs the split: one message round trip.
  AnalysisStep step;
  step.owner = n.owner;
  ++step.counters.eqset_refines;
  step.counters.refine_intervals +=
      n.dom.interval_count() + cut.interval_count();
  step.meta_bytes = 64;
  step.eqset = id;
  steps.push_back(std::move(step));

  EqSetNode inside, outside;
  inside.dom = n.dom.intersect(cut);
  outside.dom = n.dom.subtract(cut);
  inside.owner = inside_owner;
  outside.owner = n.owner;
  for (HistEntry& e : n.history) {
    HistEntry in, out;
    in.task = out.task = e.task;
    in.priv = out.priv = e.priv;
    in.owner = out.owner = e.owner;
    in.dom = inside.dom;
    out.dom = outside.dom;
    if (config_.track_values && e.values.has_value()) {
      in.values = e.values->restricted(inside.dom);
      out.values = e.values->restricted(outside.dom);
    }
    inside.history.push_back(std::move(in));
    outside.history.push_back(std::move(out));
  }
  n.history.clear();
  n.live = false;
  n.left = static_cast<std::uint32_t>(fs.nodes.size());
  n.right = n.left + 1;
  const std::uint32_t left = n.left;
  const std::uint32_t right = n.right;
  const NodeID outside_owner = n.owner;
  fs.nodes.push_back(std::move(inside));
  fs.nodes.push_back(std::move(outside));
  fs.total_created += 2;
  fs.live += 1; // one leaf became two
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle) {
    obs::LifecycleLedger& ledger = *config_.lifecycle;
    ledger.record(obs::LifecycleEventKind::Refine, launch, fs.id, id,
                  kNoEqSetID, outside_owner, fs.live);
    ledger.record(obs::LifecycleEventKind::Create, launch, fs.id, left, id,
                  inside_owner, fs.live);
    ledger.record(obs::LifecycleEventKind::Create, launch, fs.id, right, id,
                  outside_owner, fs.live);
    if (inside_owner != outside_owner)
      ledger.record(obs::LifecycleEventKind::Migrate, launch, fs.id, left,
                    id, inside_owner, fs.live);
  }
}

MaterializeResult WarnockEngine::materialize(const Requirement& req,
                                             const AnalysisContext& ctx) {
  FieldState& fs = field_state(req.field);
  const IntervalSet& dom = config_.forest->domain(req.region);

  MaterializeResult out;
  AnalysisCounters local;

  std::vector<std::uint32_t> leaves;
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "accel_lookup", ctx.task, ctx.analysis_node, &local,
                         &out.steps);
    obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                           "warnock/accel_lookup");
    leaves = lookup(fs, req, dom, local);
  }

  // Refine every partially-overlapping leaf; keep the inside children.
  std::vector<std::uint32_t> inside_ids;
  inside_ids.reserve(leaves.size());
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "eqset_refine", ctx.task, ctx.analysis_node, &local,
                         &out.steps);
    obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                           "warnock/eqset_refine");
    for (std::uint32_t id : leaves) {
      if (dom.contains(fs.nodes[id].dom)) {
        inside_ids.push_back(id);
      } else {
        refine_leaf(fs, id, dom, ctx.mapped_node, ctx.task, out.steps);
        inside_ids.push_back(fs.nodes[id].left);
      }
    }
  }
  if (options_.memoize) fs.memo[req.region.index] = inside_ids;

  // Visit each constituent set — one message round trip per set.  Every
  // equivalence set is an independent distributed object (as in Legion),
  // so analysis traffic is proportional to the number of sets touched;
  // this is exactly the effect the paper credits for ray casting's
  // advantage ("it maintains fewer total equivalence sets in its lists").
  bool paint_values = config_.track_values && !req.privilege.is_reduce();
  RegionData<double> data;
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "history_walk", ctx.task, ctx.analysis_node, &local,
                         &out.steps);
    // Deterministic reduction: the pure per-set interference tests append
    // into per-shard buffers across the executor; step construction,
    // painting and data merging fold the buffers sequentially in set
    // order, making the emitted steps and dependences bit-identical to
    // the inline loop.
    struct VisitShard {
      std::vector<AnalysisCounters> counters; ///< one per set in the shard
      /// (set index, history entry) pairs, appended in scan order.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> hits;
    };
    sharded_reduce<VisitShard>(
        config_.executor, inside_ids.size(), kSetGrain, config_.shard_batch,
        [&](VisitShard& shard, std::size_t begin, std::size_t end) {
          shard.counters.resize(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            const EqSetNode& n = fs.nodes[inside_ids[i]];
            if (n.dom.empty()) continue;
            AnalysisCounters& c = shard.counters[i - begin];
            for (std::size_t h = 0; h < n.history.size(); ++h) {
              if (entry_depends(n.history[h], n.dom, req.privilege, c))
                shard.hits.emplace_back(static_cast<std::uint32_t>(i),
                                        static_cast<std::uint32_t>(h));
            }
          }
        },
        [&](VisitShard& shard, std::size_t, std::size_t begin,
            std::size_t end) {
          std::size_t cursor = 0;
          for (std::size_t i = begin; i < end; ++i) {
            EqSetNode& n = fs.nodes[inside_ids[i]];
            if (n.dom.empty()) continue;
            AnalysisStep step;
            step.owner = n.owner;
            ++step.counters.eqset_visits;
            step.counters += shard.counters[i - begin];
            step.eqset = inside_ids[i];
            for (; cursor < shard.hits.size() && shard.hits[cursor].first == i;
                 ++cursor) {
              const HistEntry& e = n.history[shard.hits[cursor].second];
              add_dependence(out.dependences, e.task);
              if (obs::kProvenanceEnabled && config_.provenance &&
                  e.task != kInvalidLaunch) {
                obs::EdgeProvenance p;
                p.from = e.task;
                p.phase = obs::ProvPhase::EqSetVisit;
                p.region = req.region.index;
                p.eqset = inside_ids[i];
                p.field = req.field;
                p.prev = e.priv;
                p.cur = req.privilege;
                out.provenance.push_back(p);
              }
            }
            RegionData<double> piece;
            if (paint_values) {
              piece = RegionData<double>::filled(n.dom, 0.0);
              for (const HistEntry& e : n.history) {
                if (e.values.has_value()) paint_entry(piece, e, step.counters);
              }
            }
            step.meta_bytes = 64 + kEntryMetaBytes * n.history.size();
            out.steps.push_back(std::move(step));
            if (paint_values)
              data = data.empty() ? std::move(piece) : data.merged_with(piece);
          }
        },
        obs::TaskTag{ctx.task, req.field},
        ReducePhases{config_.profiler, "warnock/set_scan",
                     "warnock/visit_merge"});
  }

  if (config_.track_values) {
    if (req.privilege.is_reduce()) {
      out.data = RegionData<double>::filled(
          dom, reduction_op(req.privilege.redop).identity);
    } else {
      out.data = std::move(data);
      invariant(out.data.domain() == dom,
                "equivalence sets failed to cover the requested region");
    }
  }

  out.steps.push_back(AnalysisStep{ctx.analysis_node, local, 0});
  return out;
}

std::vector<AnalysisStep> WarnockEngine::commit(
    const Requirement& req, const RegionData<double>& result,
    const AnalysisContext& ctx) {
  FieldState& fs = field_state(req.field);
  const IntervalSet& dom = config_.forest->domain(req.region);

  obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                         "warnock/commit_register");
  AnalysisCounters local;
  std::vector<AnalysisStep> steps;
  std::vector<std::uint32_t> leaves;
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "accel_lookup", ctx.task, ctx.analysis_node, &local,
                         &steps);
    leaves = lookup(fs, req, dom, local);
  }

  // Registering the committed operation piggybacks on the materialize
  // round trip already paid for each set; commit itself is local
  // bookkeeping.
  for (std::uint32_t id : leaves) {
    EqSetNode& n = fs.nodes[id];
    if (n.dom.empty()) continue;
    invariant(dom.contains(n.dom),
              "commit found an unrefined equivalence set");
    ++local.interval_ops;
    HistEntry e;
    e.task = ctx.task;
    e.priv = req.privilege;
    e.dom = n.dom;
    e.owner = ctx.mapped_node;
    if (config_.track_values && !req.privilege.is_read()) {
      e.values = result.restricted(n.dom);
    }
    if (req.privilege.is_write()) n.history.clear();
    n.history.push_back(std::move(e));
  }

  steps.push_back(AnalysisStep{ctx.analysis_node, local, 0});
  return steps;
}

EngineStats WarnockEngine::stats() const {
  EngineStats s;
  for (const auto& [field, fs] : fields_) {
    s.live_eqsets += fs.live;
    s.total_eqsets_created += fs.total_created;
    for (const EqSetNode& n : fs.nodes) {
      if (n.live) s.history_entries += n.history.size();
    }
  }
  return s;
}

} // namespace visrt
