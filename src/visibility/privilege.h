// visrt/visibility/privilege.h
//
// Privileges (paper Section 4): each region argument of a task carries one
// of read, read-write, or reduce_f.  Two privileges interfere when tasks
// holding them on overlapping data could produce different results if
// reordered; the only non-interfering combinations are read/read and
// reductions with the same operator.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace visrt {

enum class PrivilegeKind : std::uint8_t { Read, ReadWrite, Reduce };

struct Privilege {
  PrivilegeKind kind = PrivilegeKind::Read;
  ReductionOpID redop = kNoReduction; ///< set iff kind == Reduce

  static Privilege read() { return Privilege{PrivilegeKind::Read, 0}; }
  static Privilege read_write() {
    return Privilege{PrivilegeKind::ReadWrite, 0};
  }
  static Privilege reduce(ReductionOpID op) {
    return Privilege{PrivilegeKind::Reduce, op};
  }

  bool is_read() const { return kind == PrivilegeKind::Read; }
  bool is_write() const { return kind == PrivilegeKind::ReadWrite; }
  bool is_reduce() const { return kind == PrivilegeKind::Reduce; }

  friend bool operator==(const Privilege&, const Privilege&) = default;
};

/// Interference test: could two tasks with these privileges on overlapping
/// data observe or produce different results if reordered?
inline bool interferes(const Privilege& a, const Privilege& b) {
  if (a.is_read() && b.is_read()) return false;
  if (a.is_reduce() && b.is_reduce() && a.redop == b.redop) return false;
  return true;
}

inline std::string to_string(const Privilege& p) {
  switch (p.kind) {
  case PrivilegeKind::Read: return "read";
  case PrivilegeKind::ReadWrite: return "read-write";
  case PrivilegeKind::Reduce:
    return "reduce#" + std::to_string(p.redop);
  }
  return "?";
}

} // namespace visrt
