// visrt/visibility/warnock.h
//
// The optimized Warnock's algorithm (paper Section 6.1).  The state is a
// set of equivalence sets — (region, history) pairs where every history
// operation covers the whole set.  Sets are only ever *refined* (split), so
// the refinement history forms a search tree used as a bounding volume
// hierarchy: to find the sets composing a region, descend from the root
// through overlapping children to the live leaves.
//
// Optimizations implemented, as described in the paper:
//   - the refinement BVH (internal nodes immutable, replicated everywhere,
//     so descent is charged locally to the analyzing node);
//   - memoization: each region remembers the sets that composed it last
//     time and restarts the search from them (refinement is monotone, so
//     stale entries only need descending, never ascending);
//   - equivalence-set histories are distributed: each live set is owned by
//     the node of the first task that carved it out.
#pragma once

#include <unordered_map>
#include <vector>

#include "visibility/engine.h"
#include "visibility/history.h"

namespace visrt {

class WarnockEngine final : public CoherenceEngine {
public:
  struct Options {
    /// Disable to measure the value of memoized lookups (ablation bench).
    bool memoize = true;
  };

  explicit WarnockEngine(const EngineConfig& config);
  WarnockEngine(const EngineConfig& config, Options options)
      : config_(config), options_(options) {}

  void initialize_field(RegionHandle root, FieldID field,
                        RegionData<double> initial, NodeID home) override;
  MaterializeResult materialize(const Requirement& req,
                                const AnalysisContext& ctx) override;
  std::vector<AnalysisStep> commit(const Requirement& req,
                                   const RegionData<double>& result,
                                   const AnalysisContext& ctx) override;
  EngineStats stats() const override;

private:
  static constexpr std::uint32_t kNone = UINT32_MAX;

  /// One node of the refinement tree.  Live leaves are the current
  /// equivalence sets; refined nodes keep their domain as BVH bounds.
  struct EqSetNode {
    IntervalSet dom;
    std::uint32_t left = kNone;
    std::uint32_t right = kNone;
    bool live = true;
    NodeID owner = 0;
    std::vector<HistEntry> history; // live leaves only
  };

  struct FieldState {
    RegionHandle root;
    FieldID id = 0;
    NodeID home = 0;
    std::vector<EqSetNode> nodes; // node 0 is the initial whole-domain set
    /// region index -> equivalence-set node ids seen last time
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> memo;
    std::size_t total_created = 0;
    std::size_t live = 0;
  };

  FieldState& field_state(FieldID field);

  /// Find the live leaves overlapping `dom`, starting from the memoized
  /// entry points when available.
  std::vector<std::uint32_t> lookup(FieldState& fs, const Requirement& req,
                                    const IntervalSet& dom,
                                    AnalysisCounters& local);

  /// Split leaf `id` into (dom ∩ cut, dom − cut); both inherit the history.
  /// The inside child is owned by `inside_owner` (first toucher).  Emits
  /// one analysis step at the set's owner; `launch` stamps the lifecycle
  /// events.
  void refine_leaf(FieldState& fs, std::uint32_t id, const IntervalSet& cut,
                   NodeID inside_owner, LaunchID launch,
                   std::vector<AnalysisStep>& steps);

  EngineConfig config_;
  Options options_;
  std::unordered_map<FieldID, FieldState> fields_;
};

} // namespace visrt
