#include "visibility/engine.h"

#include "common/check.h"
#include "visibility/naive.h"
#include "visibility/paint.h"
#include "visibility/raycast.h"
#include "visibility/reference.h"
#include "visibility/warnock.h"

namespace visrt {

const char* algorithm_name(Algorithm a) {
  switch (a) {
  case Algorithm::Paint: return "paint";
  case Algorithm::Warnock: return "warnock";
  case Algorithm::RayCast: return "raycast";
  case Algorithm::NaivePaint: return "naive-paint";
  case Algorithm::NaiveWarnock: return "naive-warnock";
  case Algorithm::NaiveRayCast: return "naive-raycast";
  case Algorithm::Reference: return "reference";
  }
  return "?";
}

std::unique_ptr<CoherenceEngine> make_engine(Algorithm algorithm,
                                             const EngineConfig& config) {
  require(config.forest != nullptr, "engine config requires a region forest");
  switch (algorithm) {
  case Algorithm::Paint: {
    PaintEngine::Options options;
    options.occlusion_pruning = config.tuning.paint_occlusion_pruning;
    options.inject_reduce_bug = config.tuning.inject_paint_reduce_bug;
    return std::make_unique<PaintEngine>(config, options);
  }
  case Algorithm::Warnock: {
    WarnockEngine::Options options;
    options.memoize = config.tuning.warnock_memoize;
    return std::make_unique<WarnockEngine>(config, options);
  }
  case Algorithm::RayCast: {
    RayCastEngine::Options options;
    options.dominating_writes = config.tuning.raycast_dominating_writes;
    options.force_kd_fallback = config.tuning.raycast_force_kd_fallback;
    return std::make_unique<RayCastEngine>(config, options);
  }
  case Algorithm::NaivePaint:
    return std::make_unique<NaivePaintEngine>(config);
  case Algorithm::NaiveWarnock:
    return std::make_unique<NaiveWarnockEngine>(config);
  case Algorithm::NaiveRayCast:
    return std::make_unique<NaiveRayCastEngine>(config);
  case Algorithm::Reference:
    return std::make_unique<ReferenceEngine>(config);
  }
  invariant_failure("unknown algorithm");
}

} // namespace visrt
