#include "visibility/engine.h"

#include "common/check.h"
#include "visibility/naive.h"
#include "visibility/paint.h"
#include "visibility/raycast.h"
#include "visibility/reference.h"
#include "visibility/warnock.h"

namespace visrt {

const char* algorithm_name(Algorithm a) {
  switch (a) {
  case Algorithm::Paint: return "paint";
  case Algorithm::Warnock: return "warnock";
  case Algorithm::RayCast: return "raycast";
  case Algorithm::NaivePaint: return "naive-paint";
  case Algorithm::NaiveWarnock: return "naive-warnock";
  case Algorithm::NaiveRayCast: return "naive-raycast";
  case Algorithm::Reference: return "reference";
  }
  return "?";
}

std::unique_ptr<CoherenceEngine> make_engine(Algorithm algorithm,
                                             const EngineConfig& config) {
  require(config.forest != nullptr, "engine config requires a region forest");
  switch (algorithm) {
  case Algorithm::Paint:
    return std::make_unique<PaintEngine>(config);
  case Algorithm::Warnock:
    return std::make_unique<WarnockEngine>(config);
  case Algorithm::RayCast:
    return std::make_unique<RayCastEngine>(config);
  case Algorithm::NaivePaint:
    return std::make_unique<NaivePaintEngine>(config);
  case Algorithm::NaiveWarnock:
    return std::make_unique<NaiveWarnockEngine>(config);
  case Algorithm::NaiveRayCast:
    return std::make_unique<NaiveRayCastEngine>(config);
  case Algorithm::Reference:
    return std::make_unique<ReferenceEngine>(config);
  }
  invariant_failure("unknown algorithm");
}

} // namespace visrt
