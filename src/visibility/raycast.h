// visrt/visibility/raycast.h
//
// Ray casting (paper Section 7): Warnock's materialize/commit, except that
// every read-write materialization performs a *dominating write* — a fresh
// equivalence set covering exactly the written region replaces every set it
// occludes.  Sets therefore coalesce as well as refine, keeping the live
// set count proportional to the partitions the application actually uses.
//
// Because coalescing destroys the refinement tree, there is no stable
// BVH over equivalence sets.  Following Section 7.1, the engine selects a
// disjoint-and-complete partition of the root as the acceleration
// structure (each subregion holds a bucket of intersecting sets, with a
// static BVH over subregion bounds for cross-partition queries), and falls
// back to a dynamic interval tree — the 1-D K-d tree — when no such
// partition exists.  If the application shifts to a different
// disjoint-complete partition, the buckets are rebuilt on the new subtree.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geom/bvh.h"
#include "geom/interval_tree.h"
#include "visibility/engine.h"
#include "visibility/history.h"

namespace visrt {

class RayCastEngine final : public CoherenceEngine {
public:
  struct Options {
    /// Disable to measure the value of dominating writes: the engine then
    /// degenerates to Warnock-style refinement-only behaviour (ablation).
    bool dominating_writes = true;
    /// Force the K-d (interval tree) fallback even when a
    /// disjoint-complete partition exists (ablation).
    bool force_kd_fallback = false;
  };

  explicit RayCastEngine(const EngineConfig& config);
  RayCastEngine(const EngineConfig& config, Options options)
      : config_(config), options_(options) {}

  void initialize_field(RegionHandle root, FieldID field,
                        RegionData<double> initial, NodeID home) override;
  MaterializeResult materialize(const Requirement& req,
                                const AnalysisContext& ctx) override;
  std::vector<AnalysisStep> commit(const Requirement& req,
                                   const RegionData<double>& result,
                                   const AnalysisContext& ctx) override;
  EngineStats stats() const override;

  /// Least launch id named by any live set's history (kInvalidLaunch when
  /// no live entry names a task): histories are the sole source of
  /// dependences, so no future materialize can report anything below it.
  LaunchID retire_watermark() const override;

  /// Dominating writes leave dead set husks in the per-field slot vectors;
  /// once more than `max_dead` are resident, rebuild the vectors with an
  /// order-stable remap (new id = rank among live ids).  Every consumer —
  /// buckets, the interval-tree fallback, last_sets — scans ids in sorted
  /// order and dead entries cost no counters, so analysis behaviour is
  /// bit-identical; only the numbering of *future* sets shifts.
  std::size_t compact_husks(std::size_t max_dead) override;

private:
  static constexpr std::uint32_t kNone = UINT32_MAX;

  struct EqSet {
    IntervalSet dom;
    bool live = true;
    NodeID owner = 0;
    std::vector<HistEntry> history;
    /// Folded value payloads of the collapsed history prefix (the paper's
    /// composite view); painted before the per-entry history when present.
    std::optional<RegionData<double>> composite;
    /// Entries [0, collapsed) of `history` carry the collapsed flag; the
    /// frontier only advances (a write clears the whole history anyway).
    std::uint32_t collapsed = 0;
  };

  struct FieldState {
    RegionHandle root;
    FieldID id = 0;
    NodeID home = 0;
    std::vector<EqSet> sets;
    std::size_t total_created = 0;
    std::size_t live = 0;

    // Acceleration structure: partition buckets or interval-tree fallback.
    PartitionHandle accel_partition;           // invalid => fallback
    std::vector<std::vector<std::uint32_t>> buckets; // per color
    Bvh color_bvh;                             // over subregion bounds
    IntervalTree fallback;
    /// Memoized region -> overlapping accel colors (domains are immutable,
    /// so entries stay valid until the accel partition changes).
    std::unordered_map<std::uint32_t, std::vector<std::uint64_t>>
        color_cache;
    /// Constituent sets discovered by the last materialize of a region;
    /// commit reuses them when still live (materialize itself always
    /// re-casts, per Section 7).
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> last_sets;
    /// Signatures of (set domain, cut) pairs already refined once: index
    /// space expressions are interned (as in Legion's region forest), so
    /// re-splitting the same pattern in a later iteration reuses the
    /// cached intersection instead of recomputing it.
    std::unordered_set<std::size_t> split_signatures;
    /// Interned answers to "does a set with this domain signature span
    /// several subregions of the acceleration partition?" — the alignment
    /// test repeats identically every iteration in steady state.
    std::unordered_map<std::size_t, bool> align_cache;
  };

  FieldState& field_state(FieldID field);

  /// Choose/maintain the acceleration structure for a request on `region`
  /// (Section 7.1 heuristic); may rebuild buckets on a partition shift.
  void select_accel(FieldState& fs, RegionHandle region,
                    AnalysisCounters& local);
  void rebuild_accel(FieldState& fs, AnalysisCounters& local);

  /// Insert / remove a set id from the current acceleration structure.
  void accel_insert(FieldState& fs, std::uint32_t id,
                    AnalysisCounters& local);
  /// Accel-partition colors whose subregions overlap `dom` (cached per
  /// region handle).
  const std::vector<std::uint64_t>& colors_for(FieldState& fs,
                                               RegionHandle region,
                                               const IntervalSet& dom,
                                               AnalysisCounters& local);
  void accel_remove(FieldState& fs, std::uint32_t id);

  /// Live sets overlapping `dom` — the ray cast.
  std::vector<std::uint32_t> cast(FieldState& fs, RegionHandle region,
                                  const IntervalSet& dom,
                                  AnalysisCounters& local);

  /// Create a live set owned by `owner`; creation and index insertion are
  /// charged to `charge` (the owner's counters — the owning node builds
  /// its own index entries).  `launch`/`parent` stamp the lifecycle event
  /// (parent = the refined set the new one was carved from, or kNoEqSetID).
  std::uint32_t create_set(FieldState& fs, IntervalSet dom, NodeID owner,
                           LaunchID launch, EqSetID parent,
                           AnalysisCounters& charge);

  /// Section 7.1: when a disjoint-complete partition is the acceleration
  /// structure, a set spanning several of its subregions is split into
  /// per-subregion pieces in one k-way operation (the sets live "at the
  /// leaves of the P partition"), instead of Warnock's sequential pairwise
  /// refinement whose shrinking remainder fragments ever further.  Returns
  /// the pieces, or empty when alignment does not apply.
  std::vector<std::uint32_t> split_aligned(
      FieldState& fs, std::uint32_t id, const IntervalSet& dom,
      NodeID inside_owner, LaunchID launch, std::vector<AnalysisStep>& steps,
      AnalysisCounters& local);
  void split_set(FieldState& fs, std::uint32_t id, const IntervalSet& cut,
                 NodeID inside_owner, LaunchID launch,
                 std::uint32_t& inside_id, std::vector<AnalysisStep>& steps);

  /// Composite-view collapse (EngineConfig::max_history_depth): fold the
  /// value payloads of all but the newest max_history_depth entries of
  /// `s.history` into `s.composite`, flagging the folded prefix.  GC work,
  /// modeled as free — paint_entry charges flagged entries exactly what
  /// painting them would have cost, so analysis stays bit-identical.
  void collapse_history(EqSet& s);

  EngineConfig config_;
  Options options_;
  std::unordered_map<FieldID, FieldState> fields_;
};

} // namespace visrt
