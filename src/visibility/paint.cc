#include "visibility/paint.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/executor.h"
#include "obs/lifecycle.h"
#include "obs/profile.h"
#include "obs/recorder.h"

namespace visrt {

PaintEngine::PaintEngine(const EngineConfig& config)
    : PaintEngine(config, Options{}) {}

namespace {
/// Approximate serialized size of one history entry inside a view
/// (metadata only; bulk data moves through the copy engine).
constexpr std::uint64_t kEntryMetaBytes = 64;
/// Minimum items per shard when the interference scans fork onto the
/// analysis executor; below 2 grains the scan stays inline.
constexpr std::size_t kShardGrain = 64;
} // namespace

std::uint64_t PaintEngine::CompositeView::bytes() const {
  std::uint64_t b = 64; // view header
  for (const HistEntry& e : entries)
    b += kEntryMetaBytes + 16 * e.dom.interval_count();
  return b;
}

void PaintEngine::initialize_field(RegionHandle root, FieldID field,
                                   RegionData<double> initial, NodeID home) {
  FieldState fs;
  fs.root = root;
  fs.id = field;
  fs.home = home;
  NodeState ns;
  ns.owner = home;
  HistEntry init;
  init.task = kInvalidLaunch;
  init.priv = Privilege::read_write();
  init.dom = config_.forest->domain(root);
  init.owner = home;
  if (config_.track_values) {
    require(initial.domain() == init.dom,
            "initial data must cover the root region");
    init.values = std::move(initial);
  }
  ns.elements.push_back(Element{std::move(init), nullptr});
  ns.subtree_entries = 1;
  ns.subtree_privs.push_back(Privilege::read_write());
  fs.nodes.emplace(root.index, std::move(ns));
  fields_.emplace(field, std::move(fs));
}

PaintEngine::FieldState& PaintEngine::field_state(FieldID field) {
  auto it = fields_.find(field);
  require(it != fields_.end(), "access to unregistered field");
  return it->second;
}

PaintEngine::NodeState& PaintEngine::node_state(FieldState& fs,
                                                RegionHandle region) {
  return fs.nodes[region.index]; // default-constructed when first touched
}

void PaintEngine::add_priv(std::vector<Privilege>& privs,
                           const Privilege& p) {
  if (std::find(privs.begin(), privs.end(), p) == privs.end())
    privs.push_back(p);
}

bool PaintEngine::privs_interfere(const std::vector<Privilege>& privs,
                                  const Privilege& p) {
  for (const Privilege& q : privs)
    if (interferes(q, p)) return true;
  return false;
}

void PaintEngine::add_summary(FieldState& fs, RegionHandle region,
                              const Privilege& p) {
  for (RegionHandle r = region; r.valid();
       r = config_.forest->parent_region(r)) {
    add_priv(node_state(fs, r).subtree_privs, p);
  }
}

void PaintEngine::adjust_counts(FieldState& fs, RegionHandle region,
                                std::ptrdiff_t by) {
  for (RegionHandle r = region; r.valid();
       r = config_.forest->parent_region(r)) {
    NodeState& ns = node_state(fs, r);
    invariant(by >= 0 ||
                  ns.subtree_entries >= static_cast<std::size_t>(-by),
              "painter subtree entry count underflow");
    ns.subtree_entries = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(ns.subtree_entries) + by);
  }
}

void PaintEngine::flatten_subtree(
    FieldState& fs, RegionHandle region, std::vector<HistEntry>& flat,
    std::map<NodeID, std::uint64_t>& captured,
    std::vector<EqSetID>& dead_views) {
  auto it = fs.nodes.find(region.index);
  if (it != fs.nodes.end()) {
    NodeState& ns = it->second;
    std::ptrdiff_t removed = 0; // counted in history entries, not elements
    for (Element& el : ns.elements) {
      if (el.view) {
        captured[el.view->owner] += el.view->entries.size();
        removed += static_cast<std::ptrdiff_t>(el.view->entries.size());
        for (const HistEntry& e : el.view->entries) flat.push_back(e);
        --fs.views_live;
        dead_views.push_back(el.view->id);
      } else {
        captured[ns.owner] += 1;
        ++removed;
        flat.push_back(std::move(el.op));
      }
    }
    ns.elements.clear();
    if (removed > 0) adjust_counts(fs, region, -removed);
    // The subtree is now empty below this node except deeper histories;
    // privilege summary resets once the whole subtree is flattened (done
    // by the caller clearing children first is unnecessary: we recurse).
  }
  for (PartitionHandle ph : config_.forest->partitions(region)) {
    for (RegionHandle child : config_.forest->children(ph)) {
      // Skip subtrees that were never touched: no node state anywhere.
      auto cit = fs.nodes.find(child.index);
      if (cit == fs.nodes.end() || cit->second.subtree_entries == 0) continue;
      flatten_subtree(fs, child, flat, captured, dead_views);
    }
  }
  if (it != fs.nodes.end()) it->second.subtree_privs.clear();
}

void PaintEngine::capture(FieldState& fs, RegionHandle at,
                          std::span<const RegionHandle> children,
                          const AnalysisContext& ctx,
                          std::vector<AnalysisStep>& steps,
                          AnalysisCounters& local) {
  std::vector<HistEntry> flat;
  // Ordered by owner: the per-owner counts become AnalysisSteps, and step
  // order must not depend on hash-table iteration (it decides work-graph op
  // ids, hence simulated timing — repros must replay identically).
  std::map<NodeID, std::uint64_t> captured;
  std::vector<EqSetID> dead_views;
  for (RegionHandle child : children)
    flatten_subtree(fs, child, flat, captured, dead_views);
  if (flat.empty()) return;

  // Launch ids are the global clock: sorting restores sequential order.
  std::stable_sort(flat.begin(), flat.end(),
                   [](const HistEntry& a, const HistEntry& b) {
                     return a.task < b.task;
                   });

  auto view = std::make_shared<CompositeView>();
  for (const HistEntry& e : flat) {
    view->full_dom = view->full_dom.unite(e.dom);
    if (e.priv.is_write()) view->write_set = view->write_set.unite(e.dom);
  }
  view->entries = std::move(flat);
  NodeState& at_state = node_state(fs, at);
  view->owner = at_state.owner;
  view->replicated_on.push_back(view->owner);
  view->id = static_cast<EqSetID>(fs.views_created);

  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle) {
    for (EqSetID dead : dead_views)
      config_.lifecycle->record(obs::LifecycleEventKind::Coalesce, ctx.task,
                                fs.id, dead, kNoEqSetID, at_state.owner,
                                fs.views_live);
  }

  // Attribute the bottom-up construction: one step per node contributing
  // entries (minimal communication to the view root).
  for (const auto& [owner, count] : captured) {
    AnalysisCounters c;
    c.composite_captures = count;
    steps.push_back(AnalysisStep{owner, c, count * kEntryMetaBytes});
  }

  // Occlusion pruning: the new view's write set covers (and therefore
  // hides) older history elements at this node.
  if (options_.occlusion_pruning && !view->write_set.empty()) {
    std::size_t before = at_state.elements.size();
    std::ptrdiff_t removed_entries = 0;
    std::erase_if(at_state.elements, [&](const Element& el) {
      ++local.composite_child_tests;
      const IntervalSet& d = el.view ? el.view->full_dom : el.op.dom;
      if (el.view == nullptr && el.op.task == kInvalidLaunch)
        return false; // keep the initial entry; it is the fallback base
      if (!view->write_set.contains(d)) return false;
      removed_entries += el.view
                             ? static_cast<std::ptrdiff_t>(el.view->entries.size())
                             : 1;
      if (el.view) {
        --fs.views_live;
        if (obs::kProvenanceEnabled && config_.provenance &&
            config_.lifecycle)
          config_.lifecycle->record(obs::LifecycleEventKind::Coalesce,
                                    ctx.task, fs.id, el.view->id, kNoEqSetID,
                                    at_state.owner, fs.views_live);
      }
      return true;
    });
    (void)before;
    if (removed_entries > 0) adjust_counts(fs, at, -removed_entries);
  }

  std::ptrdiff_t added = static_cast<std::ptrdiff_t>(view->entries.size());
  EqSetID view_id = view->id;
  NodeID view_owner = view->owner;
  at_state.elements.push_back(Element{HistEntry{}, std::move(view)});
  adjust_counts(fs, at, added);
  ++fs.views_created;
  ++fs.views_live;
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle)
    config_.lifecycle->record(obs::LifecycleEventKind::Create, ctx.task,
                              fs.id, view_id, kNoEqSetID, view_owner,
                              fs.views_live);
}

void PaintEngine::close_subtrees(FieldState& fs,
                                 const std::vector<RegionHandle>& path,
                                 const IntervalSet& dom,
                                 const Privilege& priv,
                                 const AnalysisContext& ctx,
                                 std::vector<AnalysisStep>& steps,
                                 AnalysisCounters& local) {
  const RegionTreeForest& forest = *config_.forest;
  for (std::size_t i = 0; i < path.size(); ++i) {
    RegionHandle a = path[i];
    RegionHandle next = i + 1 < path.size() ? path[i + 1] : RegionHandle{};
    PartitionHandle next_part =
        next.valid() ? forest.parent_partition(next) : PartitionHandle{};

    for (PartitionHandle ph : forest.partitions(a)) {
      if (ph == next_part) {
        // Siblings within the path partition close individually.  The
        // interference tests are pure reads of per-child subtree state (a
        // capture never touches a *sibling's* subtree counts or privilege
        // summary), so they shard across the executor; the captures
        // themselves mutate and run afterwards, sequentially in child
        // order — exactly the order the inline loop produces.
        std::span<const RegionHandle> kids = forest.children(ph);
        struct KidShard {
          AnalysisCounters counters;
          std::vector<std::uint32_t> needs; ///< child indices to capture
        };
        sharded_reduce<KidShard>(
            config_.executor, kids.size(), kShardGrain, config_.shard_batch,
            [&](KidShard& shard, std::size_t begin, std::size_t end) {
              for (std::size_t k = begin; k < end; ++k) {
                RegionHandle child = kids[k];
                if (child == next) continue;
                ++shard.counters.composite_child_tests;
                auto cit = fs.nodes.find(child.index);
                if (cit == fs.nodes.end() ||
                    cit->second.subtree_entries == 0)
                  continue;
                if (!privs_interfere(cit->second.subtree_privs, priv))
                  continue;
                if (!forest.domain(child).overlaps(dom)) continue;
                shard.needs.push_back(static_cast<std::uint32_t>(k));
              }
            },
            [&](KidShard& shard, std::size_t, std::size_t, std::size_t) {
              local += shard.counters;
              for (std::uint32_t k : shard.needs) {
                RegionHandle one[] = {kids[k]};
                capture(fs, a, one, ctx, steps, local);
              }
            },
            obs::TaskTag{ctx.task, fs.id},
            ReducePhases{config_.profiler, "paint/kid_scan",
                         "paint/kid_merge"});
        continue;
      }
      // Off-path partition subtree: capture the whole partition when any
      // open child interferes and overlaps.
      obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                             "paint/subtree_capture");
      bool need = false;
      for (RegionHandle child : forest.children(ph)) {
        ++local.composite_child_tests;
        auto cit = fs.nodes.find(child.index);
        if (cit == fs.nodes.end() || cit->second.subtree_entries == 0)
          continue;
        if (!privs_interfere(cit->second.subtree_privs, priv)) continue;
        if (!forest.domain(child).overlaps(dom)) continue;
        need = true;
        break;
      }
      if (need) capture(fs, a, forest.children(ph), ctx, steps, local);
    }
  }
}

bool PaintEngine::skips_entry(const HistEntry& e) const {
  // The synthetic fuzzer-validation bug: silently lose multi-interval
  // reduce entries (see Options::inject_reduce_bug).
  return options_.inject_reduce_bug && e.priv.is_reduce() &&
         e.dom.interval_count() >= 2;
}

MaterializeResult PaintEngine::materialize(const Requirement& req,
                                           const AnalysisContext& ctx) {
  FieldState& fs = field_state(req.field);
  const RegionTreeForest& forest = *config_.forest;
  const IntervalSet& dom = forest.domain(req.region);
  std::vector<RegionHandle> path = forest.path_from_root(req.region);

  MaterializeResult out;
  AnalysisCounters local; // work on the analyzing node
  ++local.interval_ops;   // requirement setup

  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "composite_capture", ctx.task, ctx.analysis_node,
                         &local, &out.steps);
    close_subtrees(fs, path, dom, req.privilege, ctx, out.steps, local);
  }

  // Traverse the path history root -> R, painting and collecting
  // dependences.  Composite views are replicated on demand: the first
  // traversal from this analysis node fetches the view from its owner.
  bool paint_values = config_.track_values && !req.privilege.is_reduce();
  RegionData<double> data;
  if (paint_values) data = RegionData<double>::filled(dom, 0.0);

  // Per-owner remote counters for direct node histories.  Ordered so the
  // emitted AnalysisSteps (and the work-graph ops built from them) have a
  // deterministic order.
  std::map<NodeID, AnalysisCounters> remote;

  {
    obs::ScopedSpan walk_span(config_.recorder, obs::SpanKind::Phase,
                              "history_walk", ctx.task, ctx.analysis_node,
                              &local, &out.steps);
    // Gather pass (sequential): flatten the path histories into one item
    // list and perform the on-demand view replication — the only mutation
    // of the walk.  Entry pointers stay valid: nothing below reallocates
    // an element or a view's entry vector.
    struct WalkItem {
      const HistEntry* e;
      NodeID direct_owner; ///< meaningful when !from_view
      bool from_view;
      EqSetID view_id; ///< id of the enclosing view (kNoEqSetID if direct)
    };
    std::vector<WalkItem> items;
    const std::uint64_t gather_begin =
        config_.profiler != nullptr && config_.profiler->enabled()
            ? obs::prof_now_ns()
            : 0;
    for (RegionHandle a : path) {
      auto it = fs.nodes.find(a.index);
      if (it == fs.nodes.end()) continue;
      NodeState& ns = it->second;
      for (Element& el : ns.elements) {
        if (el.view) {
          CompositeView& v = *el.view;
          if (std::find(v.replicated_on.begin(), v.replicated_on.end(),
                        ctx.analysis_node) == v.replicated_on.end()) {
            v.replicated_on.push_back(ctx.analysis_node);
            AnalysisCounters fetch;
            fetch.composite_captures = 1;
            out.steps.push_back(
                AnalysisStep{v.owner, fetch, v.bytes(), v.id});
            if (obs::kProvenanceEnabled && config_.provenance &&
                config_.lifecycle)
              config_.lifecycle->record(obs::LifecycleEventKind::Migrate,
                                        ctx.task, fs.id, v.id, kNoEqSetID,
                                        ctx.analysis_node, fs.views_live);
          }
          for (const HistEntry& e : v.entries)
            items.push_back(WalkItem{&e, 0, true, v.id});
        } else {
          items.push_back(WalkItem{&el.op, ns.owner, false, kNoEqSetID});
        }
      }
    }

    // Test pass: per-item interference tests are pure, so they run as a
    // deterministic reduction — each shard accumulates into a private
    // buffer, and the combine folds the buffers in shard (= item) order.
    // Counter sums are commutative and the dependence list is a sorted
    // set, so the result is bit-identical to the inline walk at any
    // thread count.
    struct WalkShard {
      AnalysisCounters local;
      std::map<NodeID, AnalysisCounters> remote;
      std::vector<std::uint32_t> hits; ///< indices into `items`
    };
    if (config_.profiler != nullptr && config_.profiler->enabled()) {
      config_.profiler->phase(obs::PhaseKind::Other, "paint/item_gather",
                              obs::prof_now_ns() - gather_begin);
    }
    sharded_reduce<WalkShard>(
        config_.executor, items.size(), kShardGrain, config_.shard_batch,
        [&](WalkShard& w, std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            const WalkItem& item = items[k];
            if (item.from_view) {
              ++w.local.composite_child_tests;
              if (skips_entry(*item.e)) continue;
              if (entry_depends(*item.e, dom, req.privilege, w.local))
                w.hits.push_back(static_cast<std::uint32_t>(k));
            } else {
              AnalysisCounters& rc = item.direct_owner == ctx.analysis_node
                                         ? w.local
                                         : w.remote[item.direct_owner];
              if (skips_entry(*item.e)) continue;
              if (entry_depends(*item.e, dom, req.privilege, rc))
                w.hits.push_back(static_cast<std::uint32_t>(k));
            }
          }
        },
        [&](WalkShard& w, std::size_t, std::size_t, std::size_t) {
          local += w.local;
          for (const auto& [owner, counters] : w.remote)
            remote[owner] += counters;
          for (std::uint32_t k : w.hits) {
            const WalkItem& item = items[k];
            add_dependence(out.dependences, item.e->task);
            if (obs::kProvenanceEnabled && config_.provenance &&
                item.e->task != kInvalidLaunch) {
              obs::EdgeProvenance p;
              p.from = item.e->task;
              p.phase = item.from_view ? obs::ProvPhase::CompositeView
                                       : obs::ProvPhase::HistoryWalk;
              p.region = req.region.index;
              p.eqset = item.view_id;
              p.field = req.field;
              p.prev = item.e->priv;
              p.cur = req.privilege;
              out.provenance.push_back(p);
            }
          }
        },
        obs::TaskTag{ctx.task, req.field},
        ReducePhases{config_.profiler, "paint/item_scan",
                     "paint/item_merge"});

    // Paint pass (sequential): value application is order-dependent, so
    // it replays the items in history order on the calling thread.
    if (paint_values) {
      for (const WalkItem& item : items) {
        if (skips_entry(*item.e)) continue;
        if (!item.e->values.has_value()) continue;
        AnalysisCounters& rc =
            item.from_view || item.direct_owner == ctx.analysis_node
                ? local
                : remote[item.direct_owner];
        paint_entry(data, *item.e, rc);
      }
    }

    for (auto& [owner, counters] : remote) {
      out.steps.push_back(AnalysisStep{owner, counters, 256});
    }
  }

  if (config_.track_values) {
    if (req.privilege.is_reduce()) {
      out.data = RegionData<double>::filled(
          dom, reduction_op(req.privilege.redop).identity);
    } else {
      out.data = std::move(data);
    }
  }
  out.steps.push_back(AnalysisStep{ctx.analysis_node, local, 0});
  return out;
}

std::vector<AnalysisStep> PaintEngine::commit(const Requirement& req,
                                              const RegionData<double>& result,
                                              const AnalysisContext& ctx) {
  FieldState& fs = field_state(req.field);
  const IntervalSet& dom = config_.forest->domain(req.region);

  obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                         "paint/commit_register");
  HistEntry e;
  e.task = ctx.task;
  e.priv = req.privilege;
  e.dom = dom;
  e.owner = ctx.mapped_node;
  if (config_.track_values && !req.privilege.is_read()) {
    require(result.domain() == dom, "commit data must cover the region");
    e.values = result;
  }

  NodeState& ns = node_state(fs, req.region);
  ns.owner = ctx.mapped_node; // last committer owns the node's history
  ns.elements.push_back(Element{std::move(e), nullptr});
  adjust_counts(fs, req.region, +1);
  add_summary(fs, req.region, req.privilege);

  AnalysisCounters c;
  ++c.history_entries;
  return {AnalysisStep{ctx.mapped_node, c, 0}};
}

EngineStats PaintEngine::stats() const {
  EngineStats s;
  for (const auto& [field, fs] : fields_) {
    s.total_composite_views += fs.views_created;
    s.live_composite_views += fs.views_live;
    for (const auto& [idx, ns] : fs.nodes) {
      for (const Element& el : ns.elements) {
        s.history_entries += el.view ? el.view->entries.size() : 1;
      }
    }
  }
  return s;
}

} // namespace visrt
