// visrt/visibility/history.h
//
// The history entry type shared by all coherence engines: one committed
// operation <privilege, region> of the paper's state S, tagged with the
// launch that performed it (the launch id is the paper's global clock).
// `paint_entry` is the body of the paint() loop of Figure 7.
#pragma once

#include <optional>

#include "common/types.h"
#include "geom/interval_set.h"
#include "realm/reduction_ops.h"
#include "region/region_data.h"
#include "visibility/engine.h"
#include "visibility/privilege.h"

namespace visrt {

/// One committed operation.  `values` is present for read-write and reduce
/// entries when value tracking is on (reads never change data, so their
/// entries carry no values).
///
/// `collapsed` marks an entry whose value payload was folded into a
/// set-level composite view (bounded-memory streaming, see
/// EngineConfig::max_history_depth): the dependence skeleton
/// (task/priv/dom) stays — dependences and the retirement watermark are
/// unchanged — and painting charges the entry's modeled cost without
/// repainting it, so analysis results and counters are bit-identical to
/// the uncollapsed history.
struct HistEntry {
  LaunchID task = kInvalidLaunch;
  Privilege priv;
  IntervalSet dom;
  std::optional<RegionData<double>> values;
  NodeID owner = 0; ///< node that performed the operation
  bool collapsed = false;
};

/// Apply one history entry to `target` (restricted to target's domain):
///   read-write: target := (target (+) entry)/target
///   reduce_f:   target := target (+) f(entry/target, target/entry)
///   read:       no-op
inline void paint_entry(RegionData<double>& target, const HistEntry& e,
                        AnalysisCounters& c) {
  if (e.collapsed) {
    // The entry's values already live in the set's composite view, which
    // the caller painted first.  Charge exactly what painting the entry
    // would have cost so the modeled work is independent of collapsing.
    if (e.priv.kind != PrivilegeKind::Read)
      c.interval_ops += e.dom.interval_count();
    return;
  }
  switch (e.priv.kind) {
  case PrivilegeKind::ReadWrite:
    target.overwrite_from(*e.values);
    c.interval_ops += e.dom.interval_count();
    break;
  case PrivilegeKind::Reduce: {
    const ReductionOp& op = reduction_op(e.priv.redop);
    target.fold_from(op.fold, *e.values);
    c.interval_ops += e.dom.interval_count();
    break;
  }
  case PrivilegeKind::Read:
    break;
  }
}

/// Does a prior entry induce a dependence for a new access <priv, dom>?
inline bool entry_depends(const HistEntry& e, const IntervalSet& dom,
                          const Privilege& priv, AnalysisCounters& c) {
  ++c.history_entries;
  return interferes(e.priv, priv) && e.dom.overlaps(dom);
}

/// Insert a dependence, keeping the list sorted and unique; initialization
/// entries (kInvalidLaunch) are skipped.  Templated over the vector's
/// allocator so arena-backed scratch lists (common/arena.h) work too.
template <typename Alloc>
inline void add_dependence(std::vector<LaunchID, Alloc>& deps,
                           LaunchID task) {
  if (task == kInvalidLaunch) return;
  auto it = std::lower_bound(deps.begin(), deps.end(), task);
  if (it == deps.end() || *it != task) deps.insert(it, task);
}

} // namespace visrt
