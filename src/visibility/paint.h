// visrt/visibility/paint.h
//
// The optimized painter's algorithm (paper Section 5.1).  Histories are
// stored in the region tree so that the history relevant to a region R is
// the concatenation of the histories on the path from the root to R.  When
// a new access would make entries recorded in a sibling subtree precede it
// in the path history, that subtree is snapshotted into an immutable
// *composite view* appended to the common ancestor's history, and the
// subtree is cleared.
//
// Optimizations implemented, as described in the paper:
//   - open/closed subtree state (entry counts) to skip empty subtrees;
//   - conservative privilege summaries to skip non-interfering subtrees;
//   - occlusion pruning: a newly appended composite view whose write set
//     covers an earlier history entry deletes that entry;
//   - composite views are immutable and replicated across nodes on demand
//     (the first traversal by a node fetches the view; later ones are
//     local).
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "visibility/engine.h"
#include "visibility/history.h"

namespace visrt {

class PaintEngine final : public CoherenceEngine {
public:
  struct Options {
    /// Disable to measure the value of occlusion pruning (ablation bench).
    bool occlusion_pruning = true;
    /// Test-only synthetic bug for validating the fuzzer: when set, the
    /// history walk silently skips reduce entries whose domain has two or
    /// more intervals — dropping both their folds (value corruption) and
    /// their dependences (soundness violation).
    bool inject_reduce_bug = false;
  };

  explicit PaintEngine(const EngineConfig& config);
  PaintEngine(const EngineConfig& config, Options options)
      : config_(config), options_(options) {}

  void initialize_field(RegionHandle root, FieldID field,
                        RegionData<double> initial, NodeID home) override;
  MaterializeResult materialize(const Requirement& req,
                                const AnalysisContext& ctx) override;
  std::vector<AnalysisStep> commit(const Requirement& req,
                                   const RegionData<double>& result,
                                   const AnalysisContext& ctx) override;
  EngineStats stats() const override;

private:
  /// Immutable snapshot of a subtree's histories, flattened in time order
  /// (launch ids are the global clock, so sorting by task id reproduces
  /// sequential order exactly).
  struct CompositeView {
    std::vector<HistEntry> entries;
    IntervalSet write_set; ///< union of read-write entry domains
    IntervalSet full_dom;  ///< union of all entry domains
    NodeID owner = 0;      ///< node that constructed the view
    std::vector<NodeID> replicated_on; ///< nodes holding a replica
    EqSetID id = kNoEqSetID; ///< lifecycle id (creation order per field)
    std::uint64_t bytes() const;
  };
  using ViewPtr = std::shared_ptr<CompositeView>;

  /// One element of a node's history: a direct entry or a composite view.
  struct Element {
    HistEntry op;  ///< valid when !view
    ViewPtr view;
  };

  struct NodeState {
    std::vector<Element> elements;
    /// Entries (direct + inside views) at this node and below; the node is
    /// "open" when nonzero.
    std::size_t subtree_entries = 0;
    /// Conservative summary of privileges recorded in the subtree.
    std::vector<Privilege> subtree_privs;
    /// Owner of this node's history (last committer; home for the root).
    NodeID owner = 0;
  };

  struct FieldState {
    RegionHandle root;
    FieldID id = 0;
    NodeID home = 0;
    std::unordered_map<std::uint32_t, NodeState> nodes;
    std::size_t views_created = 0;
    std::size_t views_live = 0;
  };

  FieldState& field_state(FieldID field);
  NodeState& node_state(FieldState& fs, RegionHandle region);

  /// True when the injected test bug drops this history entry.
  bool skips_entry(const HistEntry& e) const;

  /// Add a privilege to the summaries of `region` and all its ancestors.
  void add_summary(FieldState& fs, RegionHandle region, const Privilege& p);
  static void add_priv(std::vector<Privilege>& privs, const Privilege& p);
  static bool privs_interfere(const std::vector<Privilege>& privs,
                              const Privilege& p);

  /// Count entries at `region` and below (for subtree bookkeeping).
  void adjust_counts(FieldState& fs, RegionHandle region, std::ptrdiff_t by);

  /// The close phase: capture interfering sibling subtrees along the path
  /// into composite views.  Appends analysis steps describing the capture
  /// work.
  void close_subtrees(FieldState& fs, const std::vector<RegionHandle>& path,
                      const IntervalSet& dom, const Privilege& priv,
                      const AnalysisContext& ctx,
                      std::vector<AnalysisStep>& steps,
                      AnalysisCounters& local);

  /// Capture the subtrees rooted at `children` into one composite view
  /// appended to `at`.
  void capture(FieldState& fs, RegionHandle at,
               std::span<const RegionHandle> children,
               const AnalysisContext& ctx, std::vector<AnalysisStep>& steps,
               AnalysisCounters& local);

  /// Recursively move all entries below `region` (inclusive) into `flat`,
  /// clearing the subtree.  Returns per-owner capture counts (an ordered
  /// map: the counts become AnalysisSteps, whose order must be
  /// deterministic across runs and platforms).  Ids of views consumed by
  /// the flatten are appended to `dead_views` (lifecycle ledger).
  void flatten_subtree(FieldState& fs, RegionHandle region,
                       std::vector<HistEntry>& flat,
                       std::map<NodeID, std::uint64_t>& captured,
                       std::vector<EqSetID>& dead_views);

  EngineConfig config_;
  Options options_;
  std::unordered_map<FieldID, FieldState> fields_;
};

} // namespace visrt
