#include "visibility/naive.h"

#include "common/check.h"
#include "common/executor.h"
#include "obs/lifecycle.h"
#include "obs/profile.h"
#include "obs/recorder.h"

namespace visrt {

namespace {

/// Minimum history entries (NaivePaint) or sets (NaiveWarnock) per shard
/// when a walk forks onto the analysis executor.
constexpr std::size_t kEntryGrain = 64;
constexpr std::size_t kSetGrain = 8;

/// Dependences and (optionally) values from painting a history in order.
/// `dom` restricts the walk; `target` may be null (dependences only).
/// The per-entry interference tests shard across `ex` (pure reads); the
/// order-dependent painting replays sequentially, so the result is
/// bit-identical to an inline walk at any thread count.  When `prov` is
/// non-null, one HistoryWalk provenance record per hit is appended
/// (stamped with `region`/`field`; the dep graph keeps the first per edge).
void walk_history(Executor* ex, obs::Profiler* profiler, std::size_t batch,
                  const std::vector<HistEntry>& history,
                  const IntervalSet& dom, const Privilege& priv,
                  RegionData<double>* target, std::vector<LaunchID>& deps,
                  AnalysisCounters& c, obs::TaskTag tag = {},
                  std::vector<obs::EdgeProvenance>* prov = nullptr,
                  RegionTreeID region = UINT32_MAX, FieldID field = 0) {
  struct Shard {
    AnalysisCounters counters;
    std::vector<std::uint32_t> hits; ///< indices into `history`
  };
  sharded_reduce<Shard>(
      ex, history.size(), kEntryGrain, batch,
      [&](Shard& w, std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          if (entry_depends(history[k], dom, priv, w.counters))
            w.hits.push_back(static_cast<std::uint32_t>(k));
        }
      },
      [&](Shard& w, std::size_t, std::size_t, std::size_t) {
        c += w.counters;
        for (std::uint32_t h : w.hits) {
          const HistEntry& e = history[h];
          add_dependence(deps, e.task);
          if (prov != nullptr && e.task != kInvalidLaunch) {
            obs::EdgeProvenance p;
            p.from = e.task;
            p.phase = obs::ProvPhase::HistoryWalk;
            p.region = region;
            p.eqset = kNoEqSetID;
            p.field = field;
            p.prev = e.priv;
            p.cur = priv;
            prov->push_back(p);
          }
        }
      },
      tag, ReducePhases{profiler, "naive/history_scan",
                        "naive/history_merge"});
  if (target != nullptr) {
    for (const HistEntry& e : history) {
      if (e.values.has_value()) paint_entry(*target, e, c);
    }
  }
}

} // namespace

// ---------------------------------------------------------------------------
// NaivePaintEngine (Figure 7)
// ---------------------------------------------------------------------------

void NaivePaintEngine::initialize_field(RegionHandle root, FieldID field,
                                        RegionData<double> initial,
                                        NodeID home) {
  FieldState fs;
  fs.root = root;
  fs.home = home;
  fs.root_domain = config_.forest->domain(root);
  HistEntry init;
  init.task = kInvalidLaunch;
  init.priv = Privilege::read_write();
  init.dom = fs.root_domain;
  init.owner = home;
  if (config_.track_values) {
    require(initial.domain() == fs.root_domain,
            "initial data must cover the root region");
    init.values = std::move(initial);
  }
  fs.history.push_back(std::move(init));
  fields_.emplace(field, std::move(fs));
}

MaterializeResult NaivePaintEngine::materialize(const Requirement& req,
                                                const AnalysisContext& ctx) {
  auto it = fields_.find(req.field);
  require(it != fields_.end(), "materialize on unregistered field");
  FieldState& fs = it->second;
  const IntervalSet& dom = config_.forest->domain(req.region);

  MaterializeResult out;
  AnalysisCounters c;
  obs::ScopedSpan walk_span(config_.recorder, obs::SpanKind::Phase,
                            "history_walk", ctx.task, ctx.analysis_node, &c,
                            nullptr);
  if (req.privilege.is_reduce()) {
    // Reductions accumulate locally; the history is walked only for
    // dependences (Figure 7 line 14-15 plus the dependence analysis the
    // paper layers on the same traversal).
    if (config_.track_values) {
      out.data = RegionData<double>::filled(
          dom, reduction_op(req.privilege.redop).identity);
    }
    walk_history(config_.executor, config_.profiler, config_.shard_batch,
                 fs.history, dom, req.privilege, nullptr, out.dependences, c,
                 obs::TaskTag{ctx.task, req.field},
                 obs::kProvenanceEnabled && config_.provenance
                     ? &out.provenance
                     : nullptr,
                 req.region.index, req.field);
  } else {
    RegionData<double> data;
    RegionData<double>* target = nullptr;
    if (config_.track_values) {
      data = RegionData<double>::filled(dom, 0.0);
      target = &data;
    }
    walk_history(config_.executor, config_.profiler, config_.shard_batch,
                 fs.history, dom, req.privilege, target, out.dependences, c,
                 obs::TaskTag{ctx.task, req.field},
                 obs::kProvenanceEnabled && config_.provenance
                     ? &out.provenance
                     : nullptr,
                 req.region.index, req.field);
    out.data = std::move(data);
  }
  out.steps.push_back(AnalysisStep{fs.home, c, 0});
  return out;
}

std::vector<AnalysisStep> NaivePaintEngine::commit(
    const Requirement& req, const RegionData<double>& result,
    const AnalysisContext& ctx) {
  auto it = fields_.find(req.field);
  require(it != fields_.end(), "commit on unregistered field");
  FieldState& fs = it->second;

  obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                         "naive/commit_register");
  HistEntry e;
  e.task = ctx.task;
  e.priv = req.privilege;
  e.dom = config_.forest->domain(req.region);
  e.owner = ctx.mapped_node;
  if (config_.track_values && !req.privilege.is_read()) {
    require(result.domain() == e.dom, "commit data must cover the region");
    e.values = result;
  }
  fs.history.push_back(std::move(e));

  AnalysisCounters c;
  ++c.history_entries; // the append itself
  return {AnalysisStep{fs.home, c, 0}};
}

EngineStats NaivePaintEngine::stats() const {
  EngineStats s;
  for (const auto& [field, fs] : fields_) s.history_entries += fs.history.size();
  return s;
}

// ---------------------------------------------------------------------------
// NaiveWarnockEngine (Figure 9)
// ---------------------------------------------------------------------------

void NaiveWarnockEngine::initialize_field(RegionHandle root, FieldID field,
                                          RegionData<double> initial,
                                          NodeID home) {
  FieldState fs;
  fs.root = root;
  fs.home = home;
  fs.root_domain = config_.forest->domain(root);
  EqSet eq;
  eq.dom = fs.root_domain;
  HistEntry init;
  init.task = kInvalidLaunch;
  init.priv = Privilege::read_write();
  init.dom = fs.root_domain;
  init.owner = home;
  if (config_.track_values) {
    require(initial.domain() == fs.root_domain,
            "initial data must cover the root region");
    init.values = std::move(initial);
  }
  eq.history.push_back(std::move(init));
  fs.sets.push_back(std::move(eq));
  ++fs.sets_created;
  fields_.emplace(field, std::move(fs));
}

NaiveWarnockEngine::FieldState&
NaiveWarnockEngine::field_state(const Requirement& req) {
  auto it = fields_.find(req.field);
  require(it != fields_.end(), "access to unregistered field");
  return it->second;
}

void NaiveWarnockEngine::refine(FieldState& fs, const IntervalSet& dom,
                                AnalysisCounters& c, bool track_values) {
  std::vector<EqSet> refined;
  refined.reserve(fs.sets.size());
  for (EqSet& eq : fs.sets) {
    ++c.eqset_visits;
    c.interval_ops += eq.dom.interval_count();
    if (!eq.dom.overlaps(dom) || dom.contains(eq.dom)) {
      refined.push_back(std::move(eq));
      continue;
    }
    // Split into the parts inside and outside dom; histories restrict.
    ++c.eqset_refines;
    EqSet inside, outside;
    inside.dom = eq.dom.intersect(dom);
    outside.dom = eq.dom.subtract(dom);
    for (HistEntry& e : eq.history) {
      HistEntry in = e, out;
      out.task = e.task;
      out.priv = e.priv;
      out.owner = e.owner;
      in.dom = inside.dom;
      out.dom = outside.dom;
      if (track_values && e.values.has_value()) {
        in.values = e.values->restricted(inside.dom);
        out.values = e.values->restricted(outside.dom);
      }
      inside.history.push_back(std::move(in));
      outside.history.push_back(std::move(out));
    }
    refined.push_back(std::move(inside));
    refined.push_back(std::move(outside));
  }
  fs.sets = std::move(refined);
}

MaterializeResult NaiveWarnockEngine::materialize(const Requirement& req,
                                                  const AnalysisContext& ctx) {
  FieldState& fs = field_state(req);
  const IntervalSet& dom = config_.forest->domain(req.region);

  MaterializeResult out;
  AnalysisCounters c;
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "eqset_refine", ctx.task, ctx.analysis_node, &c,
                         nullptr);
    obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                           "naive/eqset_refine");
    std::size_t before = fs.sets.size();
    refine(fs, dom, c, config_.track_values);
    // Each split removes one set and creates two, so the net growth equals
    // the number of splits and the number of freshly created sets is twice
    // that.
    std::size_t splits = fs.sets.size() - before;
    if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle) {
      // Naive sets carry no stable ids (refine rebuilds the vector), so
      // lifecycle events use synthetic ids drawn from the creation counter.
      for (std::size_t k = 0; k < splits; ++k) {
        auto id = static_cast<EqSetID>(fs.sets_created + 2 * k);
        config_.lifecycle->record(obs::LifecycleEventKind::Refine, ctx.task,
                                  req.field, kNoEqSetID, kNoEqSetID, fs.home,
                                  before + k);
        config_.lifecycle->record(obs::LifecycleEventKind::Create, ctx.task,
                                  req.field, id, kNoEqSetID, fs.home,
                                  before + k);
        config_.lifecycle->record(obs::LifecycleEventKind::Create, ctx.task,
                                  req.field, id + 1, kNoEqSetID, fs.home,
                                  before + k + 1);
      }
    }
    fs.sets_created += 2 * splits;
  }

  RegionData<double> data;
  bool build_values = config_.track_values;
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "history_walk", ctx.task, ctx.analysis_node, &c,
                         nullptr);
    // Deterministic reduction: the pure per-set interference tests append
    // into per-shard buffers across the executor; counter accumulation,
    // painting and data merging fold the buffers sequentially in set
    // order, making the result bit-identical to the inline loop at any
    // thread count.
    struct VisitShard {
      std::vector<AnalysisCounters> counters; ///< one per set in the shard
      /// (set index, history entry) pairs, appended in scan order.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> hits;
    };
    sharded_reduce<VisitShard>(
        config_.executor, fs.sets.size(), kSetGrain, config_.shard_batch,
        [&](VisitShard& shard, std::size_t begin, std::size_t end) {
          shard.counters.resize(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            const EqSet& eq = fs.sets[i];
            if (!dom.contains(eq.dom) || eq.dom.empty()) continue;
            AnalysisCounters& cc = shard.counters[i - begin];
            for (std::size_t h = 0; h < eq.history.size(); ++h) {
              if (entry_depends(eq.history[h], eq.dom, req.privilege, cc))
                shard.hits.emplace_back(static_cast<std::uint32_t>(i),
                                        static_cast<std::uint32_t>(h));
            }
          }
        },
        [&](VisitShard& shard, std::size_t, std::size_t begin,
            std::size_t end) {
          std::size_t cursor = 0;
          for (std::size_t i = begin; i < end; ++i) {
            EqSet& eq = fs.sets[i];
            if (!dom.contains(eq.dom) || eq.dom.empty()) continue;
            ++c.eqset_visits;
            c += shard.counters[i - begin];
            for (; cursor < shard.hits.size() && shard.hits[cursor].first == i;
                 ++cursor) {
              const HistEntry& e = eq.history[shard.hits[cursor].second];
              add_dependence(out.dependences, e.task);
              if (obs::kProvenanceEnabled && config_.provenance &&
                  e.task != kInvalidLaunch) {
                obs::EdgeProvenance p;
                p.from = e.task;
                p.phase = obs::ProvPhase::EqSetVisit;
                p.region = req.region.index;
                p.eqset = kNoEqSetID; // naive sets have no stable ids
                p.field = req.field;
                p.prev = e.priv;
                p.cur = req.privilege;
                out.provenance.push_back(p);
              }
            }
            if (!build_values) continue;
            RegionData<double> piece;
            if (req.privilege.is_reduce()) {
              piece = RegionData<double>::filled(
                  eq.dom, reduction_op(req.privilege.redop).identity);
            } else {
              piece = RegionData<double>::filled(eq.dom, 0.0);
              for (const HistEntry& e : eq.history) {
                if (e.values.has_value()) paint_entry(piece, e, c);
              }
            }
            data = data.empty() ? std::move(piece) : data.merged_with(piece);
          }
        },
        obs::TaskTag{ctx.task, req.field},
        ReducePhases{config_.profiler, "naive/set_scan",
                     "naive/visit_merge"});
  }
  if (build_values && data.empty() && !dom.empty()) {
    // Domain with no equivalence sets can't happen: sets cover the root.
    invariant(dom.empty(), "equivalence sets failed to cover a request");
  }
  out.data = std::move(data);
  out.steps.push_back(AnalysisStep{fs.home, c, 0});
  return out;
}

std::vector<AnalysisStep> NaiveWarnockEngine::commit(
    const Requirement& req, const RegionData<double>& result,
    const AnalysisContext& ctx) {
  FieldState& fs = field_state(req);
  const IntervalSet& dom = config_.forest->domain(req.region);
  AnalysisCounters c;

  obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                         "naive/commit_register");
  for (EqSet& eq : fs.sets) {
    // materialize() refined, so each set is inside dom or disjoint from it.
    if (eq.dom.empty() || !dom.contains(eq.dom)) continue;
    ++c.eqset_visits;
    HistEntry e;
    e.task = ctx.task;
    e.priv = req.privilege;
    e.dom = eq.dom;
    e.owner = ctx.mapped_node;
    if (config_.track_values && !req.privilege.is_read()) {
      e.values = result.restricted(eq.dom);
    }
    if (req.privilege.is_write()) {
      eq.history.clear(); // the write occludes the set's entire history
    }
    eq.history.push_back(std::move(e));
  }
  return {AnalysisStep{fs.home, c, 0}};
}

EngineStats NaiveWarnockEngine::stats() const {
  EngineStats s;
  for (const auto& [field, fs] : fields_) {
    s.live_eqsets += fs.sets.size();
    s.total_eqsets_created += fs.sets_created;
    for (const EqSet& eq : fs.sets) s.history_entries += eq.history.size();
  }
  return s;
}

// ---------------------------------------------------------------------------
// NaiveRayCastEngine (Figure 11)
// ---------------------------------------------------------------------------

MaterializeResult NaiveRayCastEngine::materialize(const Requirement& req,
                                                  const AnalysisContext& ctx) {
  MaterializeResult out = NaiveWarnockEngine::materialize(req, ctx);
  if (!req.privilege.is_write()) return out;

  // dominating_write (Figure 11 lines 1-3): replace every equivalence set
  // covered by the region with a single fresh set whose history holds just
  // the pending write.
  FieldState& fs = field_state(req);
  const IntervalSet& dom = config_.forest->domain(req.region);
  AnalysisCounters c;
  obs::ScopedSpan prune_span(config_.recorder, obs::SpanKind::Phase,
                             "eqset_prune", ctx.task, ctx.analysis_node, &c,
                             nullptr);
  obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                         "naive/eqset_prune");
  std::size_t before = fs.sets.size();
  std::erase_if(fs.sets, [&](const EqSet& eq) {
    return eq.dom.empty() || dom.contains(eq.dom);
  });
  std::size_t pruned = before - fs.sets.size();
  c.eqsets_pruned += pruned;
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle) {
    for (std::size_t k = 0; k < pruned; ++k)
      config_.lifecycle->record(obs::LifecycleEventKind::Coalesce, ctx.task,
                                req.field, kNoEqSetID, kNoEqSetID, fs.home,
                                before - k - 1);
    config_.lifecycle->record(obs::LifecycleEventKind::Create, ctx.task,
                              req.field,
                              static_cast<EqSetID>(fs.sets_created),
                              kNoEqSetID, fs.home, fs.sets.size() + 1);
  }

  EqSet fresh;
  fresh.dom = dom;
  HistEntry e;
  e.task = ctx.task;
  e.priv = Privilege::read_write();
  e.dom = dom;
  e.owner = ctx.mapped_node;
  if (config_.track_values) e.values = out.data;
  fresh.history.push_back(std::move(e));
  fs.sets.push_back(std::move(fresh));
  ++c.eqsets_created;
  ++fs.sets_created;

  out.steps.push_back(AnalysisStep{fs.home, c, 0});
  return out;
}

} // namespace visrt
