#include "visibility/reference.h"

#include "common/check.h"
#include "obs/recorder.h"

namespace visrt {

void ReferenceEngine::initialize_field(RegionHandle root, FieldID field,
                                       RegionData<double> initial,
                                       NodeID home) {
  FieldState fs;
  fs.root = root;
  fs.home = home;
  if (config_.track_values) {
    require(initial.domain() == config_.forest->domain(root),
            "initial data must cover the root region");
    fs.master = std::move(initial);
  }
  fields_.emplace(field, std::move(fs));
}

MaterializeResult ReferenceEngine::materialize(const Requirement& req,
                                               const AnalysisContext& ctx) {
  auto it = fields_.find(req.field);
  require(it != fields_.end(), "materialize on unregistered field");
  FieldState& fs = it->second;
  const IntervalSet& dom = config_.forest->domain(req.region);

  MaterializeResult out;
  AnalysisCounters c;
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "history_walk", ctx.task, ctx.analysis_node, &c,
                         nullptr);
    for (const OpRecord& op : fs.ops) {
      ++c.history_entries;
      if (interferes(op.priv, req.privilege) && op.dom.overlaps(dom))
        add_dependence(out.dependences, op.task);
    }
  }
  if (config_.track_values) {
    if (req.privilege.is_reduce()) {
      out.data = RegionData<double>::filled(
          dom, reduction_op(req.privilege.redop).identity);
    } else {
      out.data = fs.master.restricted(dom);
    }
  }
  out.steps.push_back(AnalysisStep{fs.home, c, 0});
  return out;
}

std::vector<AnalysisStep> ReferenceEngine::commit(
    const Requirement& req, const RegionData<double>& result,
    const AnalysisContext& ctx) {
  auto it = fields_.find(req.field);
  require(it != fields_.end(), "commit on unregistered field");
  FieldState& fs = it->second;
  const IntervalSet& dom = config_.forest->domain(req.region);

  if (config_.track_values) {
    switch (req.privilege.kind) {
    case PrivilegeKind::ReadWrite:
      fs.master.overwrite_from(result);
      break;
    case PrivilegeKind::Reduce:
      fs.master.fold_from(reduction_op(req.privilege.redop).fold, result);
      break;
    case PrivilegeKind::Read:
      break;
    }
  }
  fs.ops.push_back(OpRecord{ctx.task, req.privilege, dom});
  return {AnalysisStep{fs.home, AnalysisCounters{}, 0}};
}

EngineStats ReferenceEngine::stats() const {
  EngineStats s;
  for (const auto& [field, fs] : fields_) s.history_entries += fs.ops.size();
  return s;
}

} // namespace visrt
