#include "visibility/raycast.h"

#include <algorithm>

#include "common/check.h"
#include "common/executor.h"
#include "common/hash.h"
#include "obs/lifecycle.h"
#include "obs/profile.h"
#include "obs/recorder.h"

namespace visrt {

namespace {
/// Minimum constituent sets per shard when the visit scan forks onto the
/// analysis executor.
constexpr std::size_t kSetGrain = 8;
} // namespace

RayCastEngine::RayCastEngine(const EngineConfig& config)
    : RayCastEngine(config, Options{}) {}

void RayCastEngine::initialize_field(RegionHandle root, FieldID field,
                                     RegionData<double> initial,
                                     NodeID home) {
  FieldState fs;
  fs.root = root;
  fs.id = field;
  fs.home = home;
  EqSet eq;
  eq.dom = config_.forest->domain(root);
  eq.owner = home;
  HistEntry init;
  init.task = kInvalidLaunch;
  init.priv = Privilege::read_write();
  init.dom = eq.dom;
  init.owner = home;
  if (config_.track_values) {
    require(initial.domain() == eq.dom,
            "initial data must cover the root region");
    init.values = std::move(initial);
  }
  eq.history.push_back(std::move(init));
  fs.sets.push_back(std::move(eq));
  fs.total_created = 1;
  fs.live = 1;
  fs.fallback.insert(fs.sets[0].dom.bounds(), 0);
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle)
    config_.lifecycle->record(obs::LifecycleEventKind::Create, kInvalidLaunch,
                              field, 0, kNoEqSetID, home, fs.live);
  fields_.emplace(field, std::move(fs));
}

RayCastEngine::FieldState& RayCastEngine::field_state(FieldID field) {
  auto it = fields_.find(field);
  require(it != fields_.end(), "access to unregistered field");
  return it->second;
}

void RayCastEngine::select_accel(FieldState& fs, RegionHandle region,
                                 AnalysisCounters& local) {
  if (options_.force_kd_fallback) return; // stay on the interval tree
  const RegionTreeForest& forest = *config_.forest;

  // Candidate: the top-level partition on this region's path, when it is
  // disjoint and complete.
  PartitionHandle candidate;
  for (RegionHandle r = region; !forest.is_root(r);
       r = forest.parent_region(r)) {
    candidate = forest.parent_partition(r);
  }
  if (!candidate.valid() || !forest.is_disjoint(candidate) ||
      !forest.is_complete(candidate)) {
    return; // keep whatever structure is in use
  }
  if (fs.accel_partition == candidate) return;
  fs.accel_partition = candidate;
  rebuild_accel(fs, local);
}

void RayCastEngine::rebuild_accel(FieldState& fs, AnalysisCounters& local) {
  const RegionTreeForest& forest = *config_.forest;
  std::span<const RegionHandle> children = forest.children(fs.accel_partition);
  std::vector<Bvh::Item> items;
  items.reserve(children.size());
  for (std::size_t color = 0; color < children.size(); ++color) {
    items.push_back(
        Bvh::Item{forest.domain(children[color]).bounds(), color});
  }
  fs.color_bvh = Bvh(std::move(items));
  fs.buckets.assign(children.size(), {});
  fs.fallback = IntervalTree{};
  fs.color_cache.clear();
  fs.align_cache.clear();
  for (std::uint32_t id = 0; id < fs.sets.size(); ++id) {
    if (!fs.sets[id].live) continue;
    accel_insert(fs, id, local);
  }
}

void RayCastEngine::accel_insert(FieldState& fs, std::uint32_t id,
                                 AnalysisCounters& local) {
  const EqSet& s = fs.sets[id];
  if (!fs.accel_partition.valid()) {
    fs.fallback.insert(s.dom.bounds(), id);
    ++local.accel_nodes;
    return;
  }
  BvhQueryResult colors = fs.color_bvh.query(s.dom.bounds());
  local.accel_nodes += colors.nodes_visited;
  const RegionTreeForest& forest = *config_.forest;
  std::span<const RegionHandle> children = forest.children(fs.accel_partition);
  for (std::uint64_t color : colors.items) {
    local.interval_ops += 1;
    if (forest.domain(children[color]).overlaps(s.dom)) {
      fs.buckets[color].push_back(id);
    }
  }
}

void RayCastEngine::accel_remove(FieldState& fs, std::uint32_t id) {
  if (!fs.accel_partition.valid()) {
    fs.fallback.remove(id);
  }
  // Bucket entries are pruned lazily during casts (dead ids are skipped
  // and compacted there).
}

std::vector<std::uint32_t> RayCastEngine::cast(FieldState& fs,
                                               RegionHandle region,
                                               const IntervalSet& dom,
                                               AnalysisCounters& local) {
  std::vector<std::uint32_t> ids;
  if (!fs.accel_partition.valid()) {
    IntervalTreeQueryResult q = fs.fallback.query(dom);
    local.accel_nodes += q.nodes_visited;
    for (std::uint64_t id : q.items) {
      const EqSet& s = fs.sets[id];
      local.interval_ops += 1;
      if (s.live && s.dom.overlaps(dom)) ids.push_back(
          static_cast<std::uint32_t>(id));
    }
    return ids;
  }

  const std::vector<std::uint64_t>& colors =
      colors_for(fs, region, dom, local);

  for (std::uint64_t color : colors) {
    std::vector<std::uint32_t>& bucket = fs.buckets[color];
    // Lazily drop dead sets while scanning.  The scan itself is a trivial
    // pass over inline bounds; only accepted candidates cost an interval
    // test.
    ++local.accel_nodes;
    std::size_t keep = 0;
    for (std::uint32_t id : bucket) {
      if (!fs.sets[id].live) continue;
      bucket[keep++] = id;
      if (fs.sets[id].dom.overlaps(dom)) {
        local.interval_ops += 1;
        ids.push_back(id);
      }
    }
    bucket.resize(keep);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

const std::vector<std::uint64_t>& RayCastEngine::colors_for(
    FieldState& fs, RegionHandle region, const IntervalSet& dom,
    AnalysisCounters& local) {
  // Fast path: the region is a subregion of the acceleration partition —
  // a single direct bucket.
  const RegionTreeForest& forest = *config_.forest;
  auto cit = fs.color_cache.find(region.index);
  if (cit != fs.color_cache.end()) {
    // Cached region->colors intersection (Legion memoizes these in the
    // region forest); only the cache probe is charged.
    ++local.accel_nodes;
    return cit->second;
  }

  std::vector<std::uint64_t> colors;
  std::span<const RegionHandle> children = forest.children(fs.accel_partition);
  bool direct = false;
  for (RegionHandle r = region; !forest.is_root(r);
       r = forest.parent_region(r)) {
    if (forest.parent_partition(r) == fs.accel_partition) {
      for (std::size_t color = 0; color < children.size(); ++color) {
        if (children[color] == r) {
          colors.push_back(color);
          break;
        }
      }
      direct = true;
      ++local.accel_nodes;
      break;
    }
  }
  if (!direct) {
    BvhQueryResult q = fs.color_bvh.query(dom.bounds());
    local.accel_nodes += q.nodes_visited;
    for (std::uint64_t color : q.items) {
      local.interval_ops += 1;
      if (forest.domain(children[color]).overlaps(dom))
        colors.push_back(color);
    }
  }
  return fs.color_cache.emplace(region.index, std::move(colors))
      .first->second;
}

std::uint32_t RayCastEngine::create_set(FieldState& fs, IntervalSet dom,
                                        NodeID owner, LaunchID launch,
                                        EqSetID parent,
                                        AnalysisCounters& charge) {
  EqSet s;
  s.dom = std::move(dom);
  s.owner = owner;
  std::uint32_t id = static_cast<std::uint32_t>(fs.sets.size());
  fs.sets.push_back(std::move(s));
  ++fs.total_created;
  ++fs.live;
  ++charge.eqsets_created;
  accel_insert(fs, id, charge);
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle)
    config_.lifecycle->record(obs::LifecycleEventKind::Create, launch, fs.id,
                              id, parent, owner, fs.live);
  return id;
}

void RayCastEngine::split_set(FieldState& fs, std::uint32_t id,
                              const IntervalSet& cut, NodeID inside_owner,
                              LaunchID launch, std::uint32_t& inside_id,
                              std::vector<AnalysisStep>& steps) {
  // Equivalence-set refinement, as in Warnock: the old set dies, two new
  // ones inherit the restricted history.  The split is performed by the
  // set's owner: one message round trip covers the refine and both
  // registrations.
  AnalysisStep step;
  step.owner = fs.sets[id].owner;
  step.eqset = id;
  ++step.counters.eqset_refines;
  const Interval sb = fs.sets[id].dom.bounds();
  const Interval cb = cut.bounds();
  std::size_t signature = hash_all(sb.lo, sb.hi, fs.sets[id].dom.volume(),
                                   cb.lo, cb.hi, cut.volume());
  if (fs.split_signatures.insert(signature).second) {
    // First time this (set, cut) pair is refined: compute the restricted
    // domains.  Repeats hit the interned-expression cache.
    step.counters.refine_intervals +=
        fs.sets[id].dom.interval_count() + cut.interval_count();
  } else {
    ++step.counters.interval_ops;
  }
  step.meta_bytes = 96;

  IntervalSet in_dom = fs.sets[id].dom.intersect(cut);
  IntervalSet out_dom = fs.sets[id].dom.subtract(cut);
  NodeID old_owner = fs.sets[id].owner;
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle)
    config_.lifecycle->record(obs::LifecycleEventKind::Refine, launch, fs.id,
                              id, kNoEqSetID, old_owner, fs.live);
  inside_id = create_set(fs, in_dom, inside_owner, launch, id, step.counters);
  std::uint32_t outside_id =
      create_set(fs, std::move(out_dom), old_owner, launch, id,
                 step.counters);
  steps.push_back(std::move(step));

  for (HistEntry& e : fs.sets[id].history) {
    HistEntry in, out;
    in.task = out.task = e.task;
    in.priv = out.priv = e.priv;
    in.owner = out.owner = e.owner;
    in.collapsed = out.collapsed = e.collapsed;
    in.dom = fs.sets[inside_id].dom;
    out.dom = fs.sets[outside_id].dom;
    if (config_.track_values && e.values.has_value()) {
      in.values = e.values->restricted(in.dom);
      out.values = e.values->restricted(out.dom);
    }
    fs.sets[inside_id].history.push_back(std::move(in));
    fs.sets[outside_id].history.push_back(std::move(out));
  }
  if (fs.sets[id].composite.has_value()) {
    fs.sets[inside_id].composite =
        fs.sets[id].composite->restricted(fs.sets[inside_id].dom);
    fs.sets[outside_id].composite =
        fs.sets[id].composite->restricted(fs.sets[outside_id].dom);
  }
  fs.sets[inside_id].collapsed = fs.sets[id].collapsed;
  fs.sets[outside_id].collapsed = fs.sets[id].collapsed;
  fs.sets[id].live = false;
  fs.sets[id].history.clear();
  fs.sets[id].composite.reset();
  fs.sets[id].collapsed = 0;
  --fs.live;
  accel_remove(fs, id);
}

std::vector<std::uint32_t> RayCastEngine::split_aligned(
    FieldState& fs, std::uint32_t id, const IntervalSet& dom,
    NodeID inside_owner, LaunchID launch, std::vector<AnalysisStep>& steps,
    AnalysisCounters& local) {
  if (!fs.accel_partition.valid()) return {};
  const RegionTreeForest& forest = *config_.forest;
  std::span<const RegionHandle> children = forest.children(fs.accel_partition);

  // Interned fast path: steady-state programs re-create sets with the
  // same domains every iteration, and a set known to sit inside a single
  // subregion never needs alignment.
  const Interval sb0 = fs.sets[id].dom.bounds();
  std::size_t align_sig =
      hash_all(sb0.lo, sb0.hi, fs.sets[id].dom.volume());
  auto ait = fs.align_cache.find(align_sig);
  if (ait != fs.align_cache.end() && !ait->second) {
    ++local.accel_nodes;
    return {};
  }

  // Which subregions does the set span?  Test cheaply first: the common
  // steady-state case is a set already aligned to a single subregion, and
  // it must not pay for speculative intersections.
  BvhQueryResult q = fs.color_bvh.query(fs.sets[id].dom.bounds());
  local.accel_nodes += q.nodes_visited;
  std::vector<std::uint64_t> hits;
  for (std::uint64_t color : q.items) {
    ++local.interval_ops;
    if (forest.domain(children[color]).overlaps(fs.sets[id].dom))
      hits.push_back(color);
  }
  fs.align_cache[align_sig] = hits.size() >= 2;
  if (hits.size() < 2) return {}; // nothing to align

  std::vector<std::pair<std::uint64_t, IntervalSet>> pieces;
  for (std::uint64_t color : hits) {
    IntervalSet piece =
        forest.domain(children[color]).intersect(fs.sets[id].dom);
    local.interval_ops += piece.interval_count() + 1;
    if (!piece.empty()) pieces.emplace_back(color, std::move(piece));
  }

  // Pieces of a complete partition cover the set; anything outside (the
  // partition may sit below the root) stays in a remainder set.
  IntervalSet covered;
  for (const auto& [color, piece] : pieces) covered = covered.unite(piece);
  IntervalSet remainder = fs.sets[id].dom.subtract(covered);

  // The whole k-way alignment is performed by the old set's owner in a
  // single operation (one message): this is the Section 7.1 advantage over
  // Warnock's sequential pairwise refinement chain.
  AnalysisStep step;
  step.owner = fs.sets[id].owner;
  step.meta_bytes = 64;
  step.eqset = id;

  std::vector<std::uint32_t> out;
  NodeID old_owner = fs.sets[id].owner;
  if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle)
    config_.lifecycle->record(obs::LifecycleEventKind::Refine, launch, fs.id,
                              id, kNoEqSetID, old_owner, fs.live);
  auto carve = [&](IntervalSet piece_dom) {
    NodeID owner = dom.contains(piece_dom) ? inside_owner : old_owner;
    AnalysisCounters& rc = step.counters;
    // One bulk decomposition against the partition's precomputed
    // subspaces: each piece costs a creation plus cheap interval copies,
    // not a pairwise refinement of a shrinking remainder.
    rc.interval_ops += piece_dom.interval_count();
    step.meta_bytes += 48;
    std::uint32_t nid = create_set(fs, piece_dom, owner, launch, id, rc);
    for (const HistEntry& e : fs.sets[id].history) {
      HistEntry restricted;
      restricted.task = e.task;
      restricted.priv = e.priv;
      restricted.owner = e.owner;
      restricted.collapsed = e.collapsed;
      restricted.dom = fs.sets[nid].dom;
      if (config_.track_values && e.values.has_value()) {
        restricted.values = e.values->restricted(fs.sets[nid].dom);
      }
      fs.sets[nid].history.push_back(std::move(restricted));
    }
    if (fs.sets[id].composite.has_value()) {
      fs.sets[nid].composite =
          fs.sets[id].composite->restricted(fs.sets[nid].dom);
    }
    fs.sets[nid].collapsed = fs.sets[id].collapsed;
    out.push_back(nid);
  };
  for (auto& [color, piece] : pieces) carve(std::move(piece));
  if (!remainder.empty()) carve(std::move(remainder));
  steps.push_back(std::move(step));

  fs.sets[id].live = false;
  fs.sets[id].history.clear();
  fs.sets[id].composite.reset();
  fs.sets[id].collapsed = 0;
  --fs.live;
  accel_remove(fs, id);
  return out;
}

MaterializeResult RayCastEngine::materialize(const Requirement& req,
                                             const AnalysisContext& ctx) {
  FieldState& fs = field_state(req.field);
  const IntervalSet& dom = config_.forest->domain(req.region);

  MaterializeResult out;
  AnalysisCounters local;

  std::vector<std::uint32_t> hit;
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "accel_lookup", ctx.task, ctx.analysis_node, &local,
                         &out.steps);
    obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                           "raycast/accel_lookup");
    select_accel(fs, req.region, local);
    hit = cast(fs, req.region, dom, local);
  }

  // Refine partial overlaps; collect the constituent sets.  Sets spanning
  // several subregions of the acceleration partition are first aligned to
  // its leaves (one k-way split) before any residual pairwise refinement.
  std::vector<std::uint32_t> inside_ids;
  inside_ids.reserve(hit.size());
  std::unordered_map<std::uint32_t, std::size_t> visited_by_split;
  std::vector<std::uint32_t> work(hit.begin(), hit.end());
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "eqset_refine", ctx.task, ctx.analysis_node, &local,
                         &out.steps);
    obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                           "raycast/eqset_refine");
    while (!work.empty()) {
      std::uint32_t id = work.back();
      work.pop_back();
      if (!fs.sets[id].live || fs.sets[id].dom.empty()) continue;
      if (dom.contains(fs.sets[id].dom)) {
        inside_ids.push_back(id);
        continue;
      }
      if (!fs.sets[id].dom.overlaps(dom)) continue;
      std::vector<std::uint32_t> aligned = split_aligned(
          fs, id, dom, ctx.mapped_node, ctx.task, out.steps, local);
      if (!aligned.empty()) {
        for (std::uint32_t nid : aligned) work.push_back(nid);
        continue;
      }
      std::uint32_t inside = kNone;
      split_set(fs, id, dom, ctx.mapped_node, ctx.task, inside, out.steps);
      // The split response already carries the inside half's state: its
      // visit merges into the split's round trip.
      visited_by_split[inside] = out.steps.size() - 1;
      inside_ids.push_back(inside);
    }
  }
  std::sort(inside_ids.begin(), inside_ids.end());
  inside_ids.erase(std::unique(inside_ids.begin(), inside_ids.end()),
                   inside_ids.end());

  // Visit constituents: dependences and painting.
  bool paint_values = config_.track_values && !req.privilege.is_reduce();
  RegionData<double> data;
  // One message round trip per constituent set: each equivalence set is
  // an independent distributed object, so traffic scales with the number
  // of live sets — the effect that makes coalescing writes pay off.
  {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "history_walk", ctx.task, ctx.analysis_node, &local,
                         &out.steps);
    // Deterministic reduction: each shard tests its sets' histories into
    // a private buffer; the combine folds the buffers in set order on the
    // calling thread (step bookkeeping — including merging a set's visit
    // into its split's round trip — painting and data merging), so the
    // output is bit-identical to the inline loop.
    struct VisitShard {
      std::vector<AnalysisCounters> counters; ///< one per set in the shard
      /// (set index, history entry) pairs — appended in scan order, so
      /// already sorted by set index then entry.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> hits;
    };
    sharded_reduce<VisitShard>(
        config_.executor, inside_ids.size(), kSetGrain, config_.shard_batch,
        [&](VisitShard& shard, std::size_t begin, std::size_t end) {
          shard.counters.resize(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            const EqSet& s = fs.sets[inside_ids[i]];
            if (s.dom.empty()) continue;
            AnalysisCounters& c = shard.counters[i - begin];
            for (std::size_t h = 0; h < s.history.size(); ++h) {
              if (entry_depends(s.history[h], s.dom, req.privilege, c))
                shard.hits.emplace_back(static_cast<std::uint32_t>(i),
                                        static_cast<std::uint32_t>(h));
            }
          }
        },
        [&](VisitShard& shard, std::size_t, std::size_t begin,
            std::size_t end) {
          std::size_t cursor = 0;
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t id = inside_ids[i];
            EqSet& s = fs.sets[id];
            if (s.dom.empty()) continue;
            auto vit = visited_by_split.find(id);
            AnalysisStep fresh_step;
            fresh_step.eqset = id;
            AnalysisCounters& counters = vit != visited_by_split.end()
                                             ? out.steps[vit->second].counters
                                             : fresh_step.counters;
            ++counters.eqset_visits;
            counters += shard.counters[i - begin];
            for (; cursor < shard.hits.size() && shard.hits[cursor].first == i;
                 ++cursor) {
              const HistEntry& e = s.history[shard.hits[cursor].second];
              add_dependence(out.dependences, e.task);
              if (obs::kProvenanceEnabled && config_.provenance &&
                  e.task != kInvalidLaunch) {
                obs::EdgeProvenance p;
                p.from = e.task;
                p.phase = obs::ProvPhase::EqSetVisit;
                p.region = req.region.index;
                p.eqset = id;
                p.field = req.field;
                p.prev = e.priv;
                p.cur = req.privilege;
                out.provenance.push_back(p);
              }
            }
            RegionData<double> piece;
            if (paint_values) {
              // The composite view is the folded value of the collapsed
              // history prefix; flagged entries then charge their modeled
              // paint cost inside paint_entry without repainting.
              piece = s.composite.has_value()
                          ? *s.composite
                          : RegionData<double>::filled(s.dom, 0.0);
              for (const HistEntry& e : s.history) {
                if (e.collapsed || e.values.has_value())
                  paint_entry(piece, e, counters);
              }
            }
            if (vit == visited_by_split.end()) {
              fresh_step.owner = s.owner;
              fresh_step.meta_bytes = 64 + 32 * s.history.size();
              out.steps.push_back(std::move(fresh_step));
            } else {
              out.steps[vit->second].meta_bytes += 32 * s.history.size();
            }
            if (paint_values)
              data = data.empty() ? std::move(piece) : data.merged_with(piece);
          }
        },
        obs::TaskTag{ctx.task, req.field},
        ReducePhases{config_.profiler, "raycast/set_scan",
                     "raycast/visit_merge"});
  }

  if (config_.track_values) {
    if (req.privilege.is_reduce()) {
      out.data = RegionData<double>::filled(
          dom, reduction_op(req.privilege.redop).identity);
    } else {
      invariant(data.domain() == dom,
                "equivalence sets failed to cover the requested region");
      out.data = std::move(data);
    }
  }

  // Dominating write: a fresh set covering exactly this region replaces
  // every set it occludes (Figure 11).
  if (req.privilege.is_write() && options_.dominating_writes) {
    obs::ScopedSpan span(config_.recorder, obs::SpanKind::Phase,
                         "eqset_prune", ctx.task, ctx.analysis_node, &local,
                         &out.steps);
    obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                           "raycast/eqset_prune");
    for (std::uint32_t id : inside_ids) {
      EqSet& s = fs.sets[id];
      if (!s.live) continue;
      // Pruning is a local metadata invalidation: the occluded set is
      // simply dropped from the index; no owner round trip is needed.
      ++local.eqsets_pruned;
      s.live = false;
      s.history.clear();
      s.composite.reset();
      s.collapsed = 0;
      --fs.live;
      accel_remove(fs, id);
      if (obs::kProvenanceEnabled && config_.provenance && config_.lifecycle)
        config_.lifecycle->record(obs::LifecycleEventKind::Coalesce,
                                  ctx.task, fs.id, id, kNoEqSetID, s.owner,
                                  fs.live);
    }
    AnalysisStep create_step;
    create_step.owner = ctx.mapped_node;
    create_step.meta_bytes = 64;
    std::uint32_t fresh = create_set(fs, dom, ctx.mapped_node, ctx.task,
                                     kNoEqSetID, create_step.counters);
    create_step.eqset = fresh;
    out.steps.push_back(std::move(create_step));
    HistEntry pending;
    pending.task = ctx.task;
    pending.priv = Privilege::read_write();
    pending.dom = dom;
    pending.owner = ctx.mapped_node;
    if (config_.track_values) pending.values = out.data;
    fs.sets[fresh].history.push_back(std::move(pending));
    fs.last_sets[req.region.index] = {fresh};
  } else {
    fs.last_sets[req.region.index] = inside_ids;
  }

  out.steps.push_back(AnalysisStep{ctx.analysis_node, local, 0});
  return out;
}

std::vector<AnalysisStep> RayCastEngine::commit(
    const Requirement& req, const RegionData<double>& result,
    const AnalysisContext& ctx) {
  FieldState& fs = field_state(req.field);
  const IntervalSet& dom = config_.forest->domain(req.region);

  obs::ScopedPhase phase(config_.profiler, obs::PhaseKind::Other,
                         "raycast/commit_register");
  AnalysisCounters local;
  std::vector<AnalysisStep> steps;
  // The constituent sets were just discovered by this launch's
  // materialize; reuse them if nothing died in between.
  std::vector<std::uint32_t> ids;
  auto mit = fs.last_sets.find(req.region.index);
  if (mit != fs.last_sets.end()) {
    ++local.accel_nodes;
    bool valid = true;
    for (std::uint32_t id : mit->second) {
      // kNone marks a set that died and was then compacted away
      // (compact_husks); it behaves exactly like a resident dead set.
      if (id == kNone || !fs.sets[id].live) {
        valid = false;
        break;
      }
    }
    if (valid) ids = mit->second;
  }
  if (ids.empty()) ids = cast(fs, req.region, dom, local);

  // Registering the committed operation piggybacks on the materialize
  // round trip already paid for each set; commit itself is local
  // bookkeeping.
  for (std::uint32_t id : ids) {
    EqSet& s = fs.sets[id];
    if (s.dom.empty()) continue;
    invariant(dom.contains(s.dom),
              "commit found an unrefined equivalence set");
    ++local.interval_ops;
    HistEntry e;
    e.task = ctx.task;
    e.priv = req.privilege;
    e.dom = s.dom;
    e.owner = ctx.mapped_node;
    if (config_.track_values && !req.privilege.is_read()) {
      e.values = result.restricted(s.dom);
    }
    if (req.privilege.is_write()) {
      s.history.clear();
      s.composite.reset();
      s.collapsed = 0;
    }
    s.history.push_back(std::move(e));
    collapse_history(s);
  }

  steps.push_back(AnalysisStep{ctx.analysis_node, local, 0});
  return steps;
}

void RayCastEngine::collapse_history(EqSet& s) {
  const std::size_t cap = config_.max_history_depth;
  if (cap == 0 || s.history.size() <= cap) return;
  const std::size_t frontier = s.history.size() - cap;
  if (frontier <= s.collapsed) return;
  if (config_.track_values && !s.composite.has_value())
    s.composite = RegionData<double>::filled(s.dom, 0.0);
  // GC work, not analysis work: the fold is uncharged (batch never
  // collapses, and modeled costs must not depend on the cap).
  AnalysisCounters scratch;
  for (std::size_t h = s.collapsed; h < frontier; ++h) {
    HistEntry& e = s.history[h];
    if (e.values.has_value()) {
      paint_entry(*s.composite, e, scratch);
      e.values.reset();
    }
    e.collapsed = true;
  }
  s.collapsed = static_cast<std::uint32_t>(frontier);
}

EngineStats RayCastEngine::stats() const {
  EngineStats s;
  for (const auto& [field, fs] : fields_) {
    s.live_eqsets += fs.live;
    s.total_eqsets_created += fs.total_created;
    s.resident_eqset_slots += fs.sets.size();
    for (const EqSet& eq : fs.sets) {
      if (!eq.live) continue;
      s.history_entries += eq.history.size();
      s.collapsed_entries += eq.collapsed;
      if (eq.composite.has_value()) ++s.live_composite_views;
    }
  }
  return s;
}

LaunchID RayCastEngine::retire_watermark() const {
  LaunchID w = kInvalidLaunch;
  for (const auto& [field, fs] : fields_) {
    for (const EqSet& s : fs.sets) {
      if (!s.live) continue;
      for (const HistEntry& e : s.history) {
        if (e.task == kInvalidLaunch) continue;
        if (w == kInvalidLaunch || e.task < w) w = e.task;
      }
    }
  }
  return w;
}

std::size_t RayCastEngine::compact_husks(std::size_t max_dead) {
  std::size_t dead = 0;
  for (const auto& [field, fs] : fields_) dead += fs.sets.size() - fs.live;
  if (dead <= max_dead) return 0;

  std::size_t reclaimed = 0;
  for (auto& [field, fs] : fields_) {
    if (fs.sets.size() == fs.live) continue;
    // New id = rank among live ids: monotone, so the relative order of
    // surviving ids — the order every index scans them in — is preserved.
    std::vector<std::uint32_t> remap(fs.sets.size(), kNone);
    std::vector<EqSet> live_sets;
    live_sets.reserve(fs.live);
    for (std::uint32_t id = 0; id < fs.sets.size(); ++id) {
      if (!fs.sets[id].live) continue;
      remap[id] = static_cast<std::uint32_t>(live_sets.size());
      live_sets.push_back(std::move(fs.sets[id]));
    }
    reclaimed += fs.sets.size() - live_sets.size();
    fs.sets = std::move(live_sets);

    // Buckets: dead entries cost nothing in cast() (skipped before any
    // counter is charged), so dropping them eagerly is counter-identical
    // to the lazy compaction the scan would have done.
    for (std::vector<std::uint32_t>& bucket : fs.buckets) {
      std::size_t keep = 0;
      for (std::uint32_t id : bucket) {
        if (remap[id] != kNone) bucket[keep++] = remap[id];
      }
      bucket.resize(keep);
    }

    // Fallback tree: accel_remove already erased dead ids whenever the
    // fallback is the active structure, so an in-place payload remap (no
    // structural change — traversal costs stay bit-identical) suffices.
    if (!fs.fallback.empty()) {
      std::vector<std::uint64_t> map64(remap.begin(), remap.end());
      fs.fallback.remap_payloads(map64);
    }

    // last_sets may still name dead ids (a sibling requirement of the same
    // launch can kill them between materialize and commit).  Keep the
    // entry — commit charges one probe before detecting the dead id — but
    // mark compacted ids with the kNone sentinel.
    for (auto& [region, ids] : fs.last_sets) {
      for (std::uint32_t& id : ids) {
        if (id != kNone) id = remap[id];
      }
    }
    // color_cache / split_signatures / align_cache are keyed by regions
    // and domain signatures, not set ids: untouched.
  }
  return reclaimed;
}

} // namespace visrt
