#include "visibility/dep_graph.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "region/region_tree.h"
#include "visibility/engine.h"

namespace visrt {

void DepGraph::add_task(LaunchID id) {
  require(id == task_count(), "launches must be registered in order");
  preds_.emplace_back();
  depth_.push_back(1);
  best_depth_ = std::max<std::size_t>(best_depth_, 1);
  // Same fold the differential oracle always used for its dep-graph hash.
  stream_hash_ = fnv1a_u64(stream_hash_, 0x9e3779b97f4a7c15ULL + id);
  if (order_) order_->add_node(id);
}

void DepGraph::add_edges(LaunchID to, std::span<const LaunchID> froms) {
  require(to >= base_ && to < task_count(), "unknown destination launch");
  std::span<LaunchID>& p = preds_[to - base_];
  // Merge into the scratch list, then persist it with one arena copy; a
  // re-finalized list abandons its old span (reclaimed at the next
  // retirement compaction).
  merge_scratch_.assign(p.begin(), p.end());
  bool grew = false;
  for (LaunchID f : froms) {
    require(f < to, "dependence must point backwards in program order");
    require(f >= base_, "dependence names a retired launch");
    if (std::find(merge_scratch_.begin(), merge_scratch_.end(), f) ==
        merge_scratch_.end()) {
      merge_scratch_.push_back(f);
      grew = true;
      ++edges_;
      if (order_) order_->add_edge(f, to);
    }
  }
  std::sort(merge_scratch_.begin(), merge_scratch_.end());
  if (grew)
    p = arena_.copy_span<LaunchID>(
        std::span<const LaunchID>(merge_scratch_));
  std::size_t& d = depth_[to - base_];
  for (LaunchID f : p) {
    stream_hash_ = fnv1a_u64(stream_hash_, f);
    d = std::max(d, depth_[f - base_] + 1);
  }
  best_depth_ = std::max(best_depth_, d);
}

void DepGraph::retire_prefix(LaunchID new_base) {
  require(new_base >= base_ && new_base <= task_count(),
          "dependence-graph retirement point out of range");
  if (new_base == base_) return;
  const std::size_t drop = new_base - base_;
  preds_.erase(preds_.begin(), preds_.begin() + static_cast<std::ptrdiff_t>(drop));
  depth_.erase(depth_.begin(), depth_.begin() + static_cast<std::ptrdiff_t>(drop));
  // Compact the surviving lists into a fresh arena so the retired
  // prefix's memory (and any abandoned pre-merge spans) is released —
  // the streaming service's bounded-residency contract.
  Arena compacted;
  for (std::span<LaunchID>& s : preds_)
    s = compacted.copy_span<LaunchID>(std::span<const LaunchID>(s));
  arena_ = std::move(compacted);
#if VISRT_PROVENANCE
  for (auto it = prov_.begin(); it != prov_.end();) {
    if (it->first.second < new_base)
      it = prov_.erase(it);
    else
      ++it;
  }
#endif
  base_ = new_base;
  if (order_) order_->retire_prefix(new_base);
}

std::span<const LaunchID> DepGraph::preds(LaunchID id) const {
  require(id >= base_ && id < task_count(), "unknown launch");
  return preds_[id - base_];
}

bool DepGraph::has_edge(LaunchID from, LaunchID to) const {
  require(to >= base_ && to < task_count(), "unknown launch");
  std::span<const LaunchID> p = preds_[to - base_];
  return std::binary_search(p.begin(), p.end(), from);
}

bool DepGraph::reaches(LaunchID from, LaunchID to) const {
  if (from >= to) return false;
  require(from >= base_, "reachability query names a retired launch");
  if (order_) return order_->precedes(from, to);
  // Backwards DFS from `to`; ids below `from` cannot reach it.  Every
  // intermediate of a from->to path lies strictly between them, so the
  // walk never leaves the resident window.
  std::vector<LaunchID> stack{to};
  std::vector<bool> seen(preds_.size(), false);
  while (!stack.empty()) {
    LaunchID cur = stack.back();
    stack.pop_back();
    for (LaunchID p : preds_[cur - base_]) {
      if (p == from) return true;
      if (p > from && !seen[p - base_]) {
        seen[p - base_] = true;
        stack.push_back(p);
      }
    }
  }
  return false;
}

void DepGraph::enable_order_queries() {
  if (order_) return;
  order_.emplace();
  // Replay node-then-its-edges so every edge targets the newest node — the
  // relabel-free fast path.
  for (LaunchID id = base_; id < task_count(); ++id) {
    order_->add_node(id);
    for (LaunchID f : preds_[id - base_])
      if (f >= base_) order_->add_edge(f, id);
  }
}

const OrderMaintenance& DepGraph::order() const {
  require(order_.has_value(),
          "order queries are not enabled on this dependence graph");
  return *order_;
}

#if VISRT_PROVENANCE
void DepGraph::set_provenance(LaunchID from, LaunchID to,
                              const obs::EdgeProvenance& prov) {
  prov_.emplace(std::make_pair(from, to), prov);
}

const obs::EdgeProvenance* DepGraph::provenance(LaunchID from,
                                                LaunchID to) const {
  auto it = prov_.find(std::make_pair(from, to));
  return it == prov_.end() ? nullptr : &it->second;
}
#endif

#if VISRT_PROVENANCE
std::string describe_provenance(const obs::EdgeProvenance& prov,
                                const RegionTreeForest& forest) {
  std::ostringstream os;
  os << algorithm_name(static_cast<Algorithm>(prov.engine)) << " "
     << obs::prov_phase_name(prov.phase);
  if (prov.eqset != kNoEqSetID) os << " via eqset " << prov.eqset;
  os << " on field " << prov.field;
  RegionHandle region{prov.region};
  if (region.valid() && prov.region < forest.num_regions()) {
    os << " @ ";
    std::vector<RegionHandle> path = forest.path_from_root(region);
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i) os << "/";
      os << forest.name(path[i]);
    }
  }
  os << " (" << to_string(prov.prev) << " -> " << to_string(prov.cur) << ")";
  return os.str();
}
#endif

} // namespace visrt
