#include "visibility/dep_graph.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "region/region_tree.h"
#include "visibility/engine.h"

namespace visrt {

void DepGraph::add_task(LaunchID id) {
  require(id == preds_.size(), "launches must be registered in order");
  preds_.emplace_back();
}

void DepGraph::add_edges(LaunchID to, std::span<const LaunchID> froms) {
  require(to < preds_.size(), "unknown destination launch");
  std::vector<LaunchID>& p = preds_[to];
  for (LaunchID f : froms) {
    require(f < to, "dependence must point backwards in program order");
    if (std::find(p.begin(), p.end(), f) == p.end()) {
      p.push_back(f);
      ++edges_;
    }
  }
  std::sort(p.begin(), p.end());
}

std::span<const LaunchID> DepGraph::preds(LaunchID id) const {
  require(id < preds_.size(), "unknown launch");
  return preds_[id];
}

bool DepGraph::has_edge(LaunchID from, LaunchID to) const {
  require(to < preds_.size(), "unknown launch");
  return std::binary_search(preds_[to].begin(), preds_[to].end(), from);
}

bool DepGraph::reaches(LaunchID from, LaunchID to) const {
  if (from >= to) return false;
  // Backwards DFS from `to`; ids below `from` cannot reach it.
  std::vector<LaunchID> stack{to};
  std::vector<bool> seen(preds_.size(), false);
  while (!stack.empty()) {
    LaunchID cur = stack.back();
    stack.pop_back();
    for (LaunchID p : preds_[cur]) {
      if (p == from) return true;
      if (p > from && !seen[p]) {
        seen[p] = true;
        stack.push_back(p);
      }
    }
  }
  return false;
}

#if VISRT_PROVENANCE
void DepGraph::set_provenance(LaunchID from, LaunchID to,
                              const obs::EdgeProvenance& prov) {
  prov_.emplace(std::make_pair(from, to), prov);
}

const obs::EdgeProvenance* DepGraph::provenance(LaunchID from,
                                                LaunchID to) const {
  auto it = prov_.find(std::make_pair(from, to));
  return it == prov_.end() ? nullptr : &it->second;
}
#endif

std::size_t DepGraph::critical_path() const {
  std::vector<std::size_t> depth(preds_.size(), 1);
  std::size_t best = preds_.empty() ? 0 : 1;
  for (LaunchID id = 0; id < preds_.size(); ++id) {
    for (LaunchID p : preds_[id]) {
      depth[id] = std::max(depth[id], depth[p] + 1);
    }
    best = std::max(best, depth[id]);
  }
  return best;
}

#if VISRT_PROVENANCE
std::string describe_provenance(const obs::EdgeProvenance& prov,
                                const RegionTreeForest& forest) {
  std::ostringstream os;
  os << algorithm_name(static_cast<Algorithm>(prov.engine)) << " "
     << obs::prov_phase_name(prov.phase);
  if (prov.eqset != kNoEqSetID) os << " via eqset " << prov.eqset;
  os << " on field " << prov.field;
  RegionHandle region{prov.region};
  if (region.valid() && prov.region < forest.num_regions()) {
    os << " @ ";
    std::vector<RegionHandle> path = forest.path_from_root(region);
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i) os << "/";
      os << forest.name(path[i]);
    }
  }
  os << " (" << to_string(prov.prev) << " -> " << to_string(prov.cur) << ")";
  return os.str();
}
#endif

} // namespace visrt
