#include "region/region_tree.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace visrt {

bool all_pairwise_disjoint(std::span<const IntervalSet> sets) {
  // Sweep all intervals tagged by owner; an overlap between intervals of
  // different owners falsifies disjointness.  O(total intervals log).
  struct Tagged {
    Interval iv;
    std::size_t owner;
  };
  std::vector<Tagged> all;
  for (std::size_t k = 0; k < sets.size(); ++k)
    for (const Interval& iv : sets[k].intervals())
      all.push_back(Tagged{iv, k});
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.iv.lo < b.iv.lo;
  });
  // Track the furthest-reaching interval seen so far and, from a different
  // owner, the second-furthest; intervals of one owner never overlap each
  // other (IntervalSet normalization), so only cross-owner reach matters.
  coord_t max_hi = 0;
  std::size_t max_owner = SIZE_MAX;
  coord_t other_hi = 0;
  bool any = false, any_other = false;
  for (const Tagged& t : all) {
    if (any && t.iv.lo <= max_hi && t.owner != max_owner) return false;
    if (any_other && t.iv.lo <= other_hi) return false;
    if (!any || t.iv.hi > max_hi) {
      if (any && max_owner != t.owner &&
          (!any_other || max_hi > other_hi)) {
        other_hi = max_hi;
        any_other = true;
      }
      max_hi = t.iv.hi;
      max_owner = t.owner;
      any = true;
    } else if (t.owner != max_owner && (!any_other || t.iv.hi > other_hi)) {
      other_hi = t.iv.hi;
      any_other = true;
    }
  }
  return true;
}

RegionHandle RegionTreeForest::create_root(IntervalSet domain,
                                           std::string name) {
  RegionNode node;
  node.domain = std::move(domain);
  node.name = std::move(name);
  node.depth = 0;
  regions_.push_back(std::move(node));
  return RegionHandle{static_cast<std::uint32_t>(regions_.size() - 1)};
}

PartitionHandle RegionTreeForest::create_partition(
    RegionHandle parent, std::vector<IntervalSet> subspaces,
    std::string name) {
  return create_partition(parent, std::move(subspaces), std::move(name),
                          PartitionClaim{});
}

PartitionHandle RegionTreeForest::create_partition(
    RegionHandle parent, std::vector<IntervalSet> subspaces, std::string name,
    PartitionClaim claim) {
  const RegionNode& parent_node = region(parent);
  for (const IntervalSet& s : subspaces) {
    require(parent_node.domain.contains(s),
            "partition subspace escapes the parent region");
  }
  auto compute_complete = [&] {
    IntervalSet all_union;
    for (const IntervalSet& s : subspaces) all_union = all_union.unite(s);
    return all_union == parent_node.domain;
  };

  PartitionNode pnode;
  pnode.parent = parent;
  pnode.name = std::move(name);
  pnode.claimed = claim.any();
  pnode.disjoint =
      claim.disjoint ? *claim.disjoint : all_pairwise_disjoint(subspaces);
  pnode.complete = claim.complete ? *claim.complete : compute_complete();

  // Declared claims are trusted (that is their point: skipping the
  // geometric computation), but cross-checked in debug builds and in
  // catchable-check mode so a wrong claim trips an invariant a test can
  // observe (ScopedCheckThrows) instead of silently corrupting every
  // downstream disjointness shortcut.
#ifdef NDEBUG
  const bool validate_claims = check_failures_throw();
#else
  const bool validate_claims = true;
#endif
  if (validate_claims) {
    if (claim.disjoint) {
      invariant(*claim.disjoint == all_pairwise_disjoint(subspaces),
                "declared disjointness claim contradicts the partition's "
                "subspaces");
    }
    if (claim.complete) {
      invariant(*claim.complete == compute_complete(),
                "declared completeness claim contradicts the partition's "
                "subspaces");
    }
  }
  PartitionHandle ph{static_cast<std::uint32_t>(partitions_.size())};

  // The push_backs below may reallocate regions_, invalidating
  // parent_node; copy what the loop needs first.
  const unsigned child_depth = parent_node.depth + 1;
  for (std::size_t color = 0; color < subspaces.size(); ++color) {
    RegionNode child;
    child.domain = std::move(subspaces[color]);
    child.name = pnode.name + "[" + std::to_string(color) + "]";
    child.parent = ph;
    child.depth = child_depth;
    pnode.children.push_back(
        RegionHandle{static_cast<std::uint32_t>(regions_.size())});
    regions_.push_back(std::move(child));
  }

  partitions_.push_back(std::move(pnode));
  region(parent).partitions.push_back(ph);
  return ph;
}

RegionHandle RegionTreeForest::subregion(PartitionHandle h,
                                         std::size_t color) const {
  const PartitionNode& p = partition(h);
  require(color < p.children.size(), "partition color out of range");
  return p.children[color];
}

std::size_t RegionTreeForest::partition_size(PartitionHandle h) const {
  return partition(h).children.size();
}

const IntervalSet& RegionTreeForest::domain(RegionHandle h) const {
  return region(h).domain;
}

std::string_view RegionTreeForest::name(RegionHandle h) const {
  return region(h).name;
}

std::string_view RegionTreeForest::name(PartitionHandle h) const {
  return partition(h).name;
}

bool RegionTreeForest::is_root(RegionHandle h) const {
  return !region(h).parent.valid();
}

RegionHandle RegionTreeForest::root_of(RegionHandle h) const {
  while (!is_root(h)) h = parent_region(h);
  return h;
}

PartitionHandle RegionTreeForest::parent_partition(RegionHandle h) const {
  return region(h).parent;
}

RegionHandle RegionTreeForest::parent_region(RegionHandle h) const {
  PartitionHandle p = region(h).parent;
  return p.valid() ? partition(p).parent : RegionHandle{};
}

RegionHandle RegionTreeForest::parent_of(PartitionHandle h) const {
  return partition(h).parent;
}

std::span<const PartitionHandle>
RegionTreeForest::partitions(RegionHandle h) const {
  return region(h).partitions;
}

std::span<const RegionHandle>
RegionTreeForest::children(PartitionHandle h) const {
  return partition(h).children;
}

bool RegionTreeForest::is_disjoint(PartitionHandle h) const {
  return partition(h).disjoint;
}

bool RegionTreeForest::is_complete(PartitionHandle h) const {
  return partition(h).complete;
}

bool RegionTreeForest::is_claimed(PartitionHandle h) const {
  return partition(h).claimed;
}

std::vector<RegionHandle>
RegionTreeForest::path_from_root(RegionHandle h) const {
  std::vector<RegionHandle> path;
  for (RegionHandle r = h; r.valid(); r = parent_region(r)) path.push_back(r);
  std::reverse(path.begin(), path.end());
  return path;
}

unsigned RegionTreeForest::depth(RegionHandle h) const {
  return region(h).depth;
}

std::string RegionTreeForest::to_string(RegionHandle root) const {
  std::ostringstream os;
  // Depth-first rendering with indentation.
  auto render = [&](auto&& self, RegionHandle r, unsigned indent) -> void {
    os << std::string(indent * 2, ' ') << name(r) << ' '
       << domain(r).to_string() << '\n';
    for (PartitionHandle ph : region(r).partitions) {
      const PartitionNode& p = partition(ph);
      os << std::string((indent + 1) * 2, ' ') << "partition " << p.name
         << (p.disjoint ? " disjoint" : " aliased")
         << (p.complete ? " complete" : " incomplete") << '\n';
      for (RegionHandle child : p.children) self(self, child, indent + 2);
    }
  };
  render(render, root, 0);
  return os.str();
}

const RegionTreeForest::RegionNode&
RegionTreeForest::region(RegionHandle h) const {
  require(h.valid() && h.index < regions_.size(), "invalid region handle");
  return regions_[h.index];
}

RegionTreeForest::RegionNode& RegionTreeForest::region(RegionHandle h) {
  require(h.valid() && h.index < regions_.size(), "invalid region handle");
  return regions_[h.index];
}

const RegionTreeForest::PartitionNode&
RegionTreeForest::partition(PartitionHandle h) const {
  require(h.valid() && h.index < partitions_.size(),
          "invalid partition handle");
  return partitions_[h.index];
}

RegionTreeForest::PartitionNode&
RegionTreeForest::partition(PartitionHandle h) {
  require(h.valid() && h.index < partitions_.size(),
          "invalid partition handle");
  return partitions_[h.index];
}

} // namespace visrt
