// visrt/region/region_data.h
//
// RegionData<T> is the paper's notion of a region as "a set of pairs
// {<i, v>}" (Section 4): a domain of points plus a value at each point.
// The coherence algorithms manipulate these with exactly the operators the
// pseudocode uses:
//
//   X/Y      -> restricted(Y)            (subset of X sharing points with Y)
//   X\Y      -> restricted(dom(X) - Y)   (subset of X not sharing points)
//   X (+) Y  -> overwrite_from(Y)        (union, Y's values win on overlap)
//   f(X/Y, Y/X) -> fold_from(f, Y)       (pointwise reduction on overlap)
//
// Storage is dense per interval of the (normalized) domain, giving O(runs)
// rather than O(points) bookkeeping for the common case of mostly
// contiguous regions.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/check.h"
#include "geom/interval_set.h"

namespace visrt {

template <typename T> class RegionData {
public:
  /// Empty region.
  RegionData() = default;

  /// Region over `domain` with every value initialized to `fill`.
  static RegionData filled(IntervalSet domain, const T& fill) {
    RegionData r;
    r.domain_ = std::move(domain);
    r.rebuild_offsets();
    r.values_.assign(static_cast<std::size_t>(r.domain_.volume()), fill);
    return r;
  }

  /// Region over `domain` with values produced by `gen(point)`.
  template <typename Gen>
  static RegionData generate(IntervalSet domain, Gen&& gen) {
    RegionData r;
    r.domain_ = std::move(domain);
    r.rebuild_offsets();
    r.values_.reserve(static_cast<std::size_t>(r.domain_.volume()));
    r.domain_.for_each_point(
        [&](coord_t p) { r.values_.push_back(gen(p)); });
    return r;
  }

  const IntervalSet& domain() const { return domain_; }
  bool empty() const { return domain_.empty(); }
  coord_t volume() const { return domain_.volume(); }

  /// Value at point p; p must be in the domain.
  const T& at(coord_t p) const { return values_[offset_of(p)]; }
  T& at(coord_t p) { return values_[offset_of(p)]; }

  /// X/Y: the sub-region of this region over domain() ∩ other.
  RegionData restricted(const IntervalSet& other) const {
    RegionData out;
    out.domain_ = domain_.intersect(other);
    out.rebuild_offsets();
    out.values_.resize(static_cast<std::size_t>(out.domain_.volume()));
    copy_overlap(*this, out);
    return out;
  }

  /// X\Y: the sub-region of this region over domain() - other.
  RegionData subtracted(const IntervalSet& other) const {
    RegionData out;
    out.domain_ = domain_.subtract(other);
    out.rebuild_offsets();
    out.values_.resize(static_cast<std::size_t>(out.domain_.volume()));
    copy_overlap(*this, out);
    return out;
  }

  /// In-place (X (+) src)/X : overwrite this region's values with src's on
  /// the shared points; the domain is unchanged.
  void overwrite_from(const RegionData& src) {
    for_each_shared_run(src, [](T* dst, const T* s, coord_t n) {
      for (coord_t i = 0; i < n; ++i) dst[i] = s[i];
    });
  }

  /// In-place pointwise fold on shared points: this[p] = f(src[p], this[p]).
  /// Argument order matches the paper's b(f_x, v) = f(x, v).
  template <typename Fold>
  void fold_from(Fold&& f, const RegionData& src) {
    for_each_shared_run(src, [&f](T* dst, const T* s, coord_t n) {
      for (coord_t i = 0; i < n; ++i) dst[i] = f(s[i], dst[i]);
    });
  }

  /// X (+) Y as a new region: union domain, Y's values win on overlap.
  RegionData merged_with(const RegionData& other) const {
    RegionData out;
    out.domain_ = domain_.unite(other.domain_);
    out.rebuild_offsets();
    out.values_.resize(static_cast<std::size_t>(out.domain_.volume()));
    copy_overlap(*this, out);
    copy_overlap(other, out);
    return out;
  }

  /// Set every value in the domain.
  void fill(const T& v) {
    std::fill(values_.begin(), values_.end(), v);
  }

  /// Pointwise equality over identical domains.
  friend bool operator==(const RegionData& a, const RegionData& b) {
    return a.domain_ == b.domain_ && a.values_ == b.values_;
  }

  /// Apply fn(point, value&) to every element in ascending point order.
  template <typename Fn> void for_each(Fn&& fn) {
    std::size_t k = 0;
    for (const Interval& iv : domain_.intervals())
      for (coord_t p = iv.lo; p <= iv.hi; ++p) fn(p, values_[k++]);
  }
  template <typename Fn> void for_each(Fn&& fn) const {
    std::size_t k = 0;
    for (const Interval& iv : domain_.intervals())
      for (coord_t p = iv.lo; p <= iv.hi; ++p) fn(p, values_[k++]);
  }

private:
  std::size_t offset_of(coord_t p) const {
    const auto& ivs = domain_.intervals();
    auto it = std::lower_bound(
        ivs.begin(), ivs.end(), p,
        [](const Interval& iv, coord_t v) { return iv.hi < v; });
    invariant(it != ivs.end() && it->contains(p),
              "RegionData::at point outside domain");
    std::size_t k = static_cast<std::size_t>(it - ivs.begin());
    return static_cast<std::size_t>(offsets_[k] + (p - it->lo));
  }

  void rebuild_offsets() {
    offsets_.clear();
    coord_t off = 0;
    for (const Interval& iv : domain_.intervals()) {
      offsets_.push_back(off);
      off += iv.size();
    }
  }

  /// Find the contiguous run of `p..p+len` in this region's storage.
  /// The run is guaranteed to fit in one stored interval when it came from
  /// an intersection with the domain.
  const T* run_at(coord_t p) const {
    return values_.data() + offset_of(p);
  }
  T* run_at(coord_t p) { return values_.data() + offset_of(p); }

  /// Apply op(dst_run, src_run, len) to every maximal shared run.
  template <typename RunOp>
  void for_each_shared_run(const RegionData& src, RunOp&& op) {
    IntervalSet shared = domain_.intersect(src.domain_);
    for (const Interval& iv : shared.intervals()) {
      op(run_at(iv.lo), src.run_at(iv.lo), iv.size());
    }
  }

  /// Copy values of `from` into `to` on their shared domain.
  static void copy_overlap(const RegionData& from, RegionData& to) {
    IntervalSet shared = from.domain_.intersect(to.domain_);
    for (const Interval& iv : shared.intervals()) {
      const T* s = from.run_at(iv.lo);
      T* d = to.run_at(iv.lo);
      for (coord_t i = 0; i < iv.size(); ++i) d[i] = s[i];
    }
  }

  IntervalSet domain_;
  std::vector<T> values_;
  std::vector<coord_t> offsets_; // storage offset of each domain interval
};

} // namespace visrt
