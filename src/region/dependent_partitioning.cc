#include "region/dependent_partitioning.h"

#include "common/check.h"

namespace visrt {

std::vector<IntervalSet> partition_equally(const IntervalSet& domain,
                                           std::size_t colors) {
  require(colors >= 1, "partition_equally needs at least one color");
  coord_t volume = domain.volume();
  std::vector<std::vector<coord_t>> points(colors);
  coord_t base = volume / static_cast<coord_t>(colors);
  coord_t extra = volume % static_cast<coord_t>(colors);
  // First `extra` colors get base+1 points, the rest get base.
  std::size_t color = 0;
  coord_t taken = 0;
  coord_t quota = base + (extra > 0 ? 1 : 0);
  domain.for_each_point([&](coord_t p) {
    if (taken == quota && color + 1 < colors) {
      ++color;
      taken = 0;
      quota = base + (static_cast<coord_t>(color) < extra ? 1 : 0);
    }
    points[color].push_back(p);
    ++taken;
  });
  std::vector<IntervalSet> out;
  out.reserve(colors);
  for (auto& pts : points)
    out.push_back(IntervalSet::from_points(std::move(pts)));
  return out;
}

std::vector<IntervalSet> partition_by_field(const IntervalSet& domain,
                                            std::size_t colors,
                                            const ColorFn& color_of) {
  require(static_cast<bool>(color_of), "partition_by_field needs a coloring");
  std::vector<std::vector<coord_t>> points(colors);
  domain.for_each_point([&](coord_t p) {
    std::size_t c = color_of(p);
    if (c < colors) points[c].push_back(p);
  });
  std::vector<IntervalSet> out;
  out.reserve(colors);
  for (auto& pts : points)
    out.push_back(IntervalSet::from_points(std::move(pts)));
  return out;
}

std::vector<IntervalSet> image(std::span<const IntervalSet> parts,
                               const PointerFn& ptr) {
  require(static_cast<bool>(ptr), "image needs a pointer function");
  std::vector<IntervalSet> out;
  out.reserve(parts.size());
  std::vector<coord_t> targets;
  for (const IntervalSet& part : parts) {
    std::vector<coord_t> points;
    part.for_each_point([&](coord_t p) {
      targets.clear();
      ptr(p, targets);
      points.insert(points.end(), targets.begin(), targets.end());
    });
    out.push_back(IntervalSet::from_points(std::move(points)));
  }
  return out;
}

std::vector<IntervalSet> preimage(std::span<const IntervalSet> dest_parts,
                                  const IntervalSet& source_domain,
                                  const PointerFn& ptr) {
  require(static_cast<bool>(ptr), "preimage needs a pointer function");
  std::vector<std::vector<coord_t>> points(dest_parts.size());
  std::vector<coord_t> targets;
  source_domain.for_each_point([&](coord_t p) {
    targets.clear();
    ptr(p, targets);
    for (std::size_t c = 0; c < dest_parts.size(); ++c) {
      for (coord_t d : targets) {
        if (dest_parts[c].contains(d)) {
          points[c].push_back(p);
          break;
        }
      }
    }
  });
  std::vector<IntervalSet> out;
  out.reserve(dest_parts.size());
  for (auto& pts : points)
    out.push_back(IntervalSet::from_points(std::move(pts)));
  return out;
}

} // namespace visrt
