// visrt/region/dependent_partitioning.h
//
// Dependent partitioning operators, after Treichler et al., "Dependent
// Partitioning" (OOPSLA 2016) — reference [25] of the paper.  The paper's
// programs "name the subregions by creating partitions [23, 25]"; these
// operators compute partitions *from data*:
//
//   partition_equally   — blocked partition of a domain (independent);
//   partition_by_field  — color each point by an application function of
//                         its field value;
//   image               — push a partition of a source region through a
//                         pointer field onto a destination region (the
//                         ghost partition of the circuit benchmark is the
//                         image of each piece's wires through their
//                         endpoint pointers, minus the piece's own nodes);
//   preimage            — pull a partition of a destination region back
//                         through a pointer field onto the source region.
//
// All operators are pure set computations over linearized coordinates; the
// results feed RegionTreeForest::create_partition, which classifies them
// as disjoint/aliased and complete/incomplete.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "geom/interval_set.h"

namespace visrt {

/// Pointer field: the destination coordinate(s) a source point refers to.
/// Multi-valued to support structures like wires with two endpoints; leave
/// `out` empty for points that point nowhere.
using PointerFn = std::function<void(coord_t point, std::vector<coord_t>& out)>;

/// Coloring function for partition_by_field: which subregion a point
/// belongs to, or kNoColor to leave it out of every subregion.
inline constexpr std::size_t kNoColor = static_cast<std::size_t>(-1);
using ColorFn = std::function<std::size_t(coord_t point)>;

/// Split `domain` into `colors` blocks of near-equal volume (the trailing
/// blocks are one point smaller when the volume does not divide evenly).
/// The result is always disjoint and complete.
std::vector<IntervalSet> partition_equally(const IntervalSet& domain,
                                           std::size_t colors);

/// Color every point of `domain` by `color_of`.  Points mapped to kNoColor
/// or to a color >= `colors` are dropped (the result may be incomplete);
/// the result is always disjoint.
std::vector<IntervalSet> partition_by_field(const IntervalSet& domain,
                                            std::size_t colors,
                                            const ColorFn& color_of);

/// image(parts, ptr)[c] = { d : exists p in parts[c], d in ptr(p) }.
/// Images of overlapping or pointer-aliased parts may alias.
std::vector<IntervalSet> image(std::span<const IntervalSet> parts,
                               const PointerFn& ptr);

/// preimage(dest_parts, source_domain, ptr)[c] =
///   { p in source_domain : ptr(p) intersects dest_parts[c] }.
std::vector<IntervalSet> preimage(std::span<const IntervalSet> dest_parts,
                                  const IntervalSet& source_domain,
                                  const PointerFn& ptr);

} // namespace visrt
