// visrt/region/region_tree.h
//
// The region tree (paper Figure 2(c)): a root region holding all data, with
// any number of partitions, each an array of subregions which may in turn
// be partitioned.  Partitions carry the two properties the coherence
// algorithms care about:
//   - disjoint:  no two subregions share a point (the primary partition);
//   - complete:  the subregions cover the parent (aliased ghost partitions
//                are typically neither disjoint nor complete).
//
// The forest owns every tree; regions and partitions are referenced by
// cheap copyable handles.  Domains are immutable after creation, matching
// the paper's setting (partitions are created once, then a long task stream
// uses them).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "geom/interval_set.h"

namespace visrt {

/// Handle to a region node in a RegionTreeForest.
struct RegionHandle {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
  friend bool operator==(const RegionHandle&, const RegionHandle&) = default;
};

/// Handle to a partition node in a RegionTreeForest.
struct PartitionHandle {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
  friend bool operator==(const PartitionHandle&,
                         const PartitionHandle&) = default;
};

/// Caller-declared structural properties of a partition.  A set claim is
/// trusted — the O(n log n) geometric computation is skipped, the way
/// Legion trusts DISJOINT_KIND/COMPLETE_KIND — but cross-checked against
/// the actual subspaces in debug builds and whenever invariant failures
/// are catchable (ScopedCheckThrows), so a wrong claim fails loudly under
/// test instead of silently corrupting the coherence analysis.  The
/// program linter (analysis/lint.h) reports committed wrong claims too.
struct PartitionClaim {
  std::optional<bool> disjoint;
  std::optional<bool> complete;

  bool any() const { return disjoint.has_value() || complete.has_value(); }
};

/// Owns all region trees of one runtime.
class RegionTreeForest {
public:
  /// Create the root region of a new tree over the given (linearized)
  /// domain.
  RegionHandle create_root(IntervalSet domain, std::string name);

  /// Partition `parent` into the given subspaces.  Each subspace must be a
  /// subset of the parent's domain.  Disjointness and completeness are
  /// computed here.
  PartitionHandle create_partition(RegionHandle parent,
                                   std::vector<IntervalSet> subspaces,
                                   std::string name);

  /// Partition with caller-declared disjointness/completeness claims:
  /// declared properties are trusted (see PartitionClaim), undeclared ones
  /// are computed as usual.
  PartitionHandle create_partition(RegionHandle parent,
                                   std::vector<IntervalSet> subspaces,
                                   std::string name, PartitionClaim claim);

  /// The color-th subregion of a partition.
  RegionHandle subregion(PartitionHandle partition, std::size_t color) const;
  std::size_t partition_size(PartitionHandle partition) const;

  const IntervalSet& domain(RegionHandle region) const;
  std::string_view name(RegionHandle region) const;
  std::string_view name(PartitionHandle partition) const;

  /// Structural navigation.
  bool is_root(RegionHandle region) const;
  RegionHandle root_of(RegionHandle region) const;
  /// Partition this region is a subregion of; invalid for roots.
  PartitionHandle parent_partition(RegionHandle region) const;
  /// Region one level up (through the parent partition); invalid for roots.
  RegionHandle parent_region(RegionHandle region) const;
  RegionHandle parent_of(PartitionHandle partition) const;
  std::span<const PartitionHandle> partitions(RegionHandle region) const;
  std::span<const RegionHandle> children(PartitionHandle partition) const;

  bool is_disjoint(PartitionHandle partition) const;
  bool is_complete(PartitionHandle partition) const;
  /// Did the caller declare (rather than let the forest compute) the
  /// partition's disjointness/completeness?  Claimed flags may be wrong in
  /// release builds; the linter recomputes and reports mismatches.
  bool is_claimed(PartitionHandle partition) const;

  /// Regions from the root down to `region`, inclusive.
  std::vector<RegionHandle> path_from_root(RegionHandle region) const;
  /// Tree depth (root = 0, counted in region levels).
  unsigned depth(RegionHandle region) const;

  std::size_t num_regions() const { return regions_.size(); }
  std::size_t num_partitions() const { return partitions_.size(); }

  /// Multi-line rendering of a tree for debugging and the explorer example.
  std::string to_string(RegionHandle root) const;

private:
  struct RegionNode {
    IntervalSet domain;
    std::string name;
    PartitionHandle parent;            // invalid for roots
    std::vector<PartitionHandle> partitions;
    unsigned depth = 0;
  };
  struct PartitionNode {
    RegionHandle parent;
    std::string name;
    std::vector<RegionHandle> children;
    bool disjoint = false;
    bool complete = false;
    bool claimed = false; ///< flags declared by the caller, not computed
  };

  const RegionNode& region(RegionHandle h) const;
  RegionNode& region(RegionHandle h);
  const PartitionNode& partition(PartitionHandle h) const;
  PartitionNode& partition(PartitionHandle h);

  std::vector<RegionNode> regions_;
  std::vector<PartitionNode> partitions_;
};

/// True when no two of the given sets share a point.
bool all_pairwise_disjoint(std::span<const IntervalSet> sets);

} // namespace visrt
