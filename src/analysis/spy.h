// visrt/analysis/spy.h
//
// The spy verifier: an independent checker of engine-emitted dependence
// graphs and schedules, in the spirit of Legion Spy.  None of the six
// coherence engines is trusted here — ground truth is recomputed from
// first principles, directly from region-tree geometry and privilege
// semantics (visibility/privilege.h):
//
//   two launches interfere iff some pair of their requirements names the
//   same field, holds interfering privileges, and covers overlapping
//   domains.
//
// Against that relation the verifier checks
//
//   soundness   every interfering pair is transitively ordered in the
//               dependence DAG (O(1) order-maintenance label queries,
//               common/order_maintenance.h — the old bitset transitive
//               closure was O(n²) memory and could not reach streamed
//               million-launch programs),
//   precision   no direct edge joins a non-interfering pair (and, as an
//               informational count, how many edges are transitively
//               implied by other paths), and
//   schedule    (live-runtime overload) interfering pairs do not overlap
//               in the replayed discrete-event schedule: the later task
//               starts only after the earlier one finished.
//
// Unlike the differential oracle (fuzz/oracle.h), the spy needs no
// reference engine — a blind spot shared by every engine is still caught,
// because the interference relation is recomputed, not re-derived.  The
// oracle's soundness/precision stages are built on this verifier.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/runtime.h"

namespace visrt::analysis {

struct SpyOptions {
  /// Report direct edges joining non-interfering pairs.
  bool check_precision = true;
  /// (Runtime overload only) replay the DES and check interfering pairs
  /// are ordered in simulated time.
  bool check_schedule = true;
  /// Cap on retained violation records per kind; counts stay exact.
  std::size_t max_violations = 16;
};

enum class SpyViolationKind : std::uint8_t {
  UnorderedInterference, ///< soundness: interfering pair left unordered
  ImpreciseEdge,         ///< precision: edge joins a non-interfering pair
  ScheduleOverlap,       ///< DES: interfering pair overlaps in sim time
};

const char* spy_violation_kind_name(SpyViolationKind kind);

struct SpyViolation {
  SpyViolationKind kind = SpyViolationKind::UnorderedInterference;
  LaunchID earlier = kInvalidLaunch;
  LaunchID later = kInvalidLaunch;
  std::string detail; ///< human-readable witness
};

/// Machine-readable verification result (JSON schema in docs/ANALYSIS.md).
struct SpyReport {
  std::size_t launches = 0;
  std::size_t dep_edges = 0;
  std::size_t interfering_pairs = 0;
  /// Soundness violations: interfering pairs with no transitive order.
  std::size_t unordered_pairs = 0;
  /// Precision violations: direct edges joining non-interfering pairs.
  std::size_t imprecise_edges = 0;
  /// Informational: direct edges already implied through another path
  /// (harmless — they add no ordering constraint).
  std::size_t transitive_edges = 0;
  /// Schedule violations: interfering pairs overlapping in sim time.
  std::size_t schedule_overlaps = 0;
  /// Chains in the order-maintenance structure that answered the order
  /// queries (a parallelism measure: label width).
  std::size_t order_chains = 0;
  /// Suffix-relabel events the structure suffered — nonzero means edges
  /// arrived out of append order and the O(1) guarantee degraded.
  std::size_t order_relabels = 0;
  /// First max_violations violations of each kind, most severe first.
  std::vector<SpyViolation> violations;

  bool sound() const { return unordered_pairs == 0 && schedule_overlaps == 0; }
  bool precise() const { return imprecise_edges == 0; }
  bool clean() const { return sound() && precise(); }

  /// One-line human summary, e.g.
  /// "12 launches, 18 edges, 31 interfering pairs: sound, precise".
  std::string summary() const;
  /// Machine-readable report (schema_version 1, docs/ANALYSIS.md).
  std::string to_json() const;
};

/// Verify an engine-emitted dependence graph against ground truth
/// recomputed from the forest's geometry and the launches' privileges.
/// `launches` covers the trailing window of `deps`: entry i describes
/// launch `deps.task_count() - launches.size() + i`.  With no retirement
/// that is the whole program; after Runtime::retire it is the resident
/// suffix, and pairs/edges reaching below the window (already proven
/// ordered by the retirement cut) are skipped.
SpyReport verify(const RegionTreeForest& forest, const DepGraph& deps,
                 std::span<const LaunchRecord> launches,
                 const SpyOptions& options = {});

/// Verify a finished Runtime run (requires RuntimeConfig::record_launches).
/// Additionally replays the work graph and checks the DES schedule orders
/// every interfering pair in simulated time; launches retired out of the
/// work graph use their frozen execution windows.
SpyReport verify(const Runtime& runtime, const SpyOptions& options = {});

} // namespace visrt::analysis
