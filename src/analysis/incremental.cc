#include "analysis/incremental.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace visrt::analysis {

namespace {

std::string pair_witness(const RegionTreeForest& forest, const Requirement& ra,
                         const Requirement& rb) {
  std::ostringstream os;
  os << "field " << ra.field << ": " << to_string(ra.privilege) << " on "
     << forest.name(ra.region) << " " << forest.domain(ra.region).to_string()
     << " vs " << to_string(rb.privilege) << " on " << forest.name(rb.region)
     << " " << forest.domain(rb.region).to_string();
  return os.str();
}

} // namespace

void IncrementalVerifier::drain(const Runtime& runtime) {
  require(runtime.config().record_launches,
          "incremental verification requires RuntimeConfig::record_launches");
  const DepGraph& deps = runtime.dep_graph();
  require(deps.order_queries_enabled(),
          "incremental verification requires RuntimeConfig::order_queries");
  const RegionTreeForest& forest = runtime.forest();
  const LaunchID base = deps.base();

  // Retirement since the previous drain invalidated index entries below
  // the new watermark; they were verified while resident, drop them.
  if (next_ < base) next_ = base;
  for (auto& [field, entries] : by_field_) {
    auto first = std::find_if(entries.begin(), entries.end(),
                              [&](const Entry& e) { return e.id >= base; });
    entries.erase(entries.begin(), first);
  }

  std::span<const LaunchRecord> log = runtime.launch_log();
  for (LaunchID id = next_; id < deps.task_count(); ++id) {
    const LaunchRecord& rec = log[id - runtime.launch_base()];
    ++tally_.launches;

    // Directly interfering resident partners, one witness pair per
    // earlier launch (the batch verifier's per-pair dedup).
    std::map<LaunchID, std::pair<Requirement, Requirement>> partners;
    for (const Requirement& rq : rec.requirements) {
      auto it = by_field_.find(rq.field);
      if (it == by_field_.end()) continue;
      for (const Entry& e : it->second) {
        if (e.id >= id) continue; // this drain's earlier additions only
        if (partners.count(e.id)) continue;
        if (!interferes(e.req.privilege, rq.privilege)) continue;
        if (!forest.domain(e.req.region).overlaps(forest.domain(rq.region)))
          continue;
        partners.emplace(e.id, std::make_pair(e.req, rq));
      }
    }

    // Soundness: every interfering partner must already be ordered before
    // this launch — its edges were emitted when it was analyzed.
    tally_.interfering_pairs += partners.size();
    for (const auto& [a, reqs] : partners) {
      if (deps.reaches(a, id)) continue;
      ++tally_.unordered_pairs;
      if (tally_.violations.size() < options_.max_violations)
        tally_.violations.push_back(
            {SpyViolationKind::UnorderedInterference, a, id,
             pair_witness(forest, reqs.first, reqs.second)});
    }

    // Precision: each direct edge must join a directly interfering pair;
    // edges implied through another predecessor are counted.
    if (options_.check_precision) {
      std::span<const LaunchID> preds = deps.preds(id);
      for (LaunchID a : preds) {
        if (a < base) continue;
        if (!partners.count(a)) {
          ++tally_.imprecise_edges;
          if (tally_.violations.size() < options_.max_violations) {
            std::ostringstream os;
            os << "edge " << a << " -> " << id
               << " joins launches with no interfering requirement pair";
            tally_.violations.push_back(
                {SpyViolationKind::ImpreciseEdge, a, id, os.str()});
          }
          continue;
        }
        for (LaunchID q : preds) {
          if (q != a && q >= base && deps.reaches(a, q)) {
            ++tally_.transitive_edges;
            break;
          }
        }
      }
    }

    for (const Requirement& rq : rec.requirements)
      by_field_[rq.field].push_back({id, rq});
  }
  next_ = static_cast<LaunchID>(deps.task_count());
}

const SpyReport& IncrementalVerifier::report(const Runtime& runtime) {
  const DepGraph& deps = runtime.dep_graph();
  tally_.dep_edges = deps.edge_count();
  if (deps.order_queries_enabled()) {
    const OrderStats& stats = deps.order().stats();
    tally_.order_chains = stats.active_chains;
    tally_.order_relabels = stats.relabels;
  }
  return tally_;
}

} // namespace visrt::analysis
