// visrt/analysis/incremental.h
//
// Streamed spy verification: the batch verifier (analysis/spy.h) checks a
// finished run in one sweep, so on an unbounded stream it only ever sees
// whatever launches happen to be resident at the end.  IncrementalVerifier
// instead rides along with the run — `drain()` after each ingested
// statement checks every launch analyzed since the last call *while its
// interference partners are still resident*, then lets retirement reclaim
// them.  Across the whole stream that verifies strictly more pairs than a
// final batch sweep: every launch is checked against its full resident
// window at arrival time, in O(window) work and O(window) memory per
// epoch, with transitive order answered by the O(1) order-maintenance
// labels the dependence graph maintains (RuntimeConfig::order_queries is
// required, as is record_launches).
//
// The tally is a SpyReport with the same verdict semantics as the batch
// verifier (sound / precise / transitive-edge counts), but aggregated over
// every epoch rather than the final window — counts are therefore >= the
// final batch report's on a retired run, and equal on an unretired one.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "analysis/spy.h"
#include "runtime/runtime.h"

namespace visrt::analysis {

class IncrementalVerifier {
public:
  explicit IncrementalVerifier(SpyOptions options = {})
      : options_(options) {}

  /// Check every launch the runtime analyzed since the last drain against
  /// the launches still resident.  Call after each ingested statement (or
  /// any batch of them) and once after the final one, always *before* the
  /// next Runtime::retire so partners are still resident.
  void drain(const Runtime& runtime);

  /// Launches checked so far.
  std::size_t drained() const { return tally_.launches; }

  /// Tally so far, without refreshing the graph-derived counters (use
  /// report() for the publishable form).
  const SpyReport& peek() const { return tally_; }

  /// Aggregate verdict over every drained epoch.  Refreshes the
  /// edge/order counters from the runtime's graph.
  const SpyReport& report(const Runtime& runtime);

private:
  struct Entry {
    LaunchID id;
    Requirement req;
  };

  SpyOptions options_;
  /// Resident requirements, grouped by field (the interference relation
  /// is per-field), each vector in launch order; prefix-pruned as the
  /// runtime retires.
  std::map<FieldID, std::vector<Entry>> by_field_;
  LaunchID next_ = 0; ///< first launch not yet drained
  SpyReport tally_;
};

} // namespace visrt::analysis
