#include "analysis/spy.h"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/order_maintenance.h"
#include "obs/metrics.h"
#include "sim/replay.h"

namespace visrt::analysis {

const char* spy_violation_kind_name(SpyViolationKind kind) {
  switch (kind) {
  case SpyViolationKind::UnorderedInterference:
    return "unordered-interference";
  case SpyViolationKind::ImpreciseEdge: return "imprecise-edge";
  case SpyViolationKind::ScheduleOverlap: return "schedule-overlap";
  }
  return "?";
}

namespace {

/// Square bit matrix over launch ids, row-major in 64-bit words.  Row `b`
/// holds one bit per launch `a`; the verifier only ever sets bits with
/// a < b (interference is recorded backwards in program order), so rows
/// double as "prior launches" sets.  Interference is genuinely pairwise —
/// this stays a matrix; transitive *order* is the order-maintenance
/// structure's job (common/order_maintenance.h).
class BitMatrix {
public:
  explicit BitMatrix(std::size_t n)
      : words_((n + 63) / 64), bits_(n * words_, 0) {}

  void set(std::size_t row, std::size_t bit) {
    bits_[row * words_ + bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
  bool test(std::size_t row, std::size_t bit) const {
    return (bits_[row * words_ + bit / 64] >> (bit % 64)) & 1;
  }
  std::span<const std::uint64_t> row(std::size_t r) const {
    return {&bits_[r * words_], words_};
  }
  std::size_t words() const { return words_; }

private:
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

/// First interfering requirement pair of two launches, as a witness
/// string; empty when the launches do not interfere.
std::string interference_witness(const RegionTreeForest& forest,
                                 const LaunchRecord& a,
                                 const LaunchRecord& b) {
  for (const Requirement& ra : a.requirements) {
    for (const Requirement& rb : b.requirements) {
      if (ra.field != rb.field) continue;
      if (!interferes(ra.privilege, rb.privilege)) continue;
      if (!forest.domain(ra.region).overlaps(forest.domain(rb.region)))
        continue;
      std::ostringstream os;
      os << "field " << ra.field << ": " << to_string(ra.privilege) << " on "
         << forest.name(ra.region) << " "
         << forest.domain(ra.region).to_string() << " vs "
         << to_string(rb.privilege) << " on " << forest.name(rb.region) << " "
         << forest.domain(rb.region).to_string();
      return os.str();
    }
  }
  return {};
}

/// Simulated execution window of each launch, from a DES replay.
struct ExecWindow {
  SimTime start = 0;
  SimTime finish = 0;
  bool valid = false;
};

std::vector<ExecWindow> exec_windows(const Runtime& runtime) {
  sim::ReplayResult replay = runtime.replay_graph();
  const LaunchID base = runtime.launch_base();
  std::vector<ExecWindow> windows(runtime.resident_launches());
  for (std::size_t slot = 0; slot < windows.size(); ++slot) {
    const LaunchID id = base + static_cast<LaunchID>(slot);
    sim::OpID e = runtime.exec_of(id);
    if (e == sim::kInvalidOp) continue;
    if (e == sim::kFrozenOp) {
      // Execution op retired out of the work graph; its final window was
      // frozen at retirement time.
      windows[slot] = {runtime.frozen_exec_start(id),
                       runtime.frozen_exec_finish(id), true};
    } else {
      SimTime finish = replay.finish_of(e);
      windows[slot] = {finish - runtime.work_graph().op(e).cost, finish, true};
    }
  }
  return windows;
}

SpyReport verify_impl(const RegionTreeForest& forest, const DepGraph& deps,
                      std::span<const LaunchRecord> launches,
                      const SpyOptions& options,
                      std::span<const ExecWindow> windows) {
  // `launches` covers the trailing window [base, task_count) of the
  // dependence graph — the whole program when nothing was retired, the
  // resident suffix after Runtime::retire.  Verification is over pairs
  // wholly inside the window; edges reaching below it were proven ordered
  // by the retirement cut and are skipped.
  const std::size_t n = launches.size();
  require(deps.task_count() >= n,
          "spy: launch log is larger than the dependence graph");
  const LaunchID base = static_cast<LaunchID>(deps.task_count() - n);

  SpyReport report;
  report.launches = n;
  report.dep_edges = deps.edge_count();
  if (n == 0) return report;

  // Ground-truth interference, recomputed from geometry + privileges.
  // Group requirements by field so only same-field pairs pay the overlap
  // test; interf(b, a) is set for a < b when the launches interfere.
  BitMatrix interf(n);
  std::map<FieldID, std::vector<std::pair<LaunchID, const Requirement*>>>
      by_field;
  for (std::size_t id = 0; id < n; ++id)
    for (const Requirement& req : launches[id].requirements)
      by_field[req.field].emplace_back(static_cast<LaunchID>(id), &req);
  for (const auto& [field, reqs] : by_field) {
    for (std::size_t j = 0; j < reqs.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        auto [la, ra] = reqs[i];
        auto [lb, rb] = reqs[j];
        if (la == lb) continue; // in-task aliasing is the linter's business
        if (!interferes(ra->privilege, rb->privilege)) continue;
        if (interf.test(lb, la)) continue;
        if (forest.domain(ra->region).overlaps(forest.domain(rb->region)))
          interf.set(lb, la);
      }
    }
  }

  // Transitive order over the dependence DAG, answered in O(1) per pair by
  // the order-maintenance labels (common/order_maintenance.h) instead of
  // the old O(n²)-memory BitMatrix closure.  A runtime configured with
  // RuntimeConfig::order_queries shares the structure its graph already
  // maintains; otherwise one is built here by replaying the window.  Any
  // path between two window launches stays inside the window (every
  // intermediate id lies between the endpoints), so skipping below-window
  // predecessors loses no intra-window ordering.
  OrderMaintenance local_order;
  const OrderMaintenance* order = nullptr;
  if (deps.order_queries_enabled()) {
    order = &deps.order();
  } else {
    for (std::size_t b = 0; b < n; ++b) {
      const LaunchID id = base + static_cast<LaunchID>(b);
      local_order.add_node(id);
      for (LaunchID p : deps.preds(id)) {
        invariant(p < id, "spy: dependence edge points forward in the stream");
        if (p >= base) local_order.add_edge(p, id);
      }
    }
    order = &local_order;
  }

  // Soundness (+ optional schedule) sweep: interfering pairs left
  // unordered, and interfering pairs overlapping in simulated time.
  std::vector<SpyViolation> unordered, overlaps, imprecise;
  for (std::size_t b = 0; b < n; ++b) {
    std::span<const std::uint64_t> irow = interf.row(b);
    for (std::size_t w = 0; w < interf.words(); ++w) {
      std::uint64_t pairs = irow[w];
      while (pairs != 0) {
        std::size_t a =
            w * 64 + static_cast<std::size_t>(std::countr_zero(pairs));
        pairs &= pairs - 1;
        ++report.interfering_pairs;
        if (!order->precedes(base + static_cast<LaunchID>(a),
                             base + static_cast<LaunchID>(b))) {
          ++report.unordered_pairs;
          if (unordered.size() < options.max_violations) {
            unordered.push_back(
                {SpyViolationKind::UnorderedInterference,
                 base + static_cast<LaunchID>(a),
                 base + static_cast<LaunchID>(b),
                 interference_witness(forest, launches[a], launches[b])});
          }
        }
        if (windows.empty() || !windows[a].valid || !windows[b].valid)
          continue;
        if (windows[b].start < windows[a].finish) {
          ++report.schedule_overlaps;
          if (overlaps.size() < options.max_violations) {
            std::ostringstream os;
            os << "launch " << base + b << " starts at " << windows[b].start
               << "ns before interfering launch " << base + a
               << " finishes at " << windows[a].finish << "ns";
            overlaps.push_back({SpyViolationKind::ScheduleOverlap,
                                base + static_cast<LaunchID>(a),
                                base + static_cast<LaunchID>(b), os.str()});
          }
        }
      }
    }
  }

  // Precision: a direct edge must join a directly interfering pair.  An
  // edge that does, but is already implied through another predecessor
  // (a -> ... -> q -> b), adds no ordering constraint — counted as
  // informational.
  if (options.check_precision) {
    for (std::size_t b = 0; b < n; ++b) {
      std::span<const LaunchID> preds =
          deps.preds(base + static_cast<LaunchID>(b));
      for (LaunchID a : preds) {
        if (a < base) continue; // earlier endpoint's record was retired
        if (!interf.test(b, a - base)) {
          ++report.imprecise_edges;
          if (imprecise.size() < options.max_violations) {
            std::ostringstream os;
            os << "edge " << a << " -> " << base + b
               << " joins launches with no interfering requirement pair";
            imprecise.push_back({SpyViolationKind::ImpreciseEdge, a,
                                 base + static_cast<LaunchID>(b), os.str()});
          }
          continue;
        }
        for (LaunchID q : preds) {
          if (q != a && q >= base && order->precedes(a, q)) {
            ++report.transitive_edges;
            break;
          }
        }
      }
    }
  }

  const OrderStats& ostats = order->stats();
  report.order_chains = ostats.active_chains;
  report.order_relabels = ostats.relabels;

  report.violations = std::move(unordered);
  report.violations.insert(report.violations.end(), overlaps.begin(),
                           overlaps.end());
  report.violations.insert(report.violations.end(), imprecise.begin(),
                           imprecise.end());
  return report;
}

} // namespace

SpyReport verify(const RegionTreeForest& forest, const DepGraph& deps,
                 std::span<const LaunchRecord> launches,
                 const SpyOptions& options) {
  return verify_impl(forest, deps, launches, options, {});
}

SpyReport verify(const Runtime& runtime, const SpyOptions& options) {
  require(runtime.config().record_launches,
          "spy verification requires RuntimeConfig::record_launches");
  std::vector<ExecWindow> windows;
  if (options.check_schedule) windows = exec_windows(runtime);
  return verify_impl(runtime.forest(), runtime.dep_graph(),
                     runtime.launch_log(), options, windows);
}

std::string SpyReport::summary() const {
  std::ostringstream os;
  os << launches << " launches, " << dep_edges << " edges, "
     << interfering_pairs << " interfering pairs: ";
  if (sound()) {
    os << "sound";
  } else {
    os << "UNSOUND (" << unordered_pairs << " unordered";
    if (schedule_overlaps > 0)
      os << ", " << schedule_overlaps << " schedule overlaps";
    os << ")";
  }
  if (imprecise_edges > 0) {
    os << ", imprecise (" << imprecise_edges << " extra edges)";
  } else {
    os << ", precise";
  }
  if (transitive_edges > 0)
    os << " [" << transitive_edges << " transitively implied]";
  return os.str();
}

std::string SpyReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"launches\":" << launches
     << ",\"dep_edges\":" << dep_edges
     << ",\"interfering_pairs\":" << interfering_pairs
     << ",\"unordered_pairs\":" << unordered_pairs
     << ",\"imprecise_edges\":" << imprecise_edges
     << ",\"transitive_edges\":" << transitive_edges
     << ",\"schedule_overlaps\":" << schedule_overlaps
     << ",\"order_chains\":" << order_chains
     << ",\"order_relabels\":" << order_relabels
     << ",\"sound\":" << (sound() ? "true" : "false")
     << ",\"precise\":" << (precise() ? "true" : "false")
     << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const SpyViolation& v = violations[i];
    os << (i ? "," : "") << "{\"kind\":\"" << spy_violation_kind_name(v.kind)
       << "\",\"earlier\":" << v.earlier << ",\"later\":" << v.later
       << ",\"detail\":\"" << obs::json_escape(v.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

} // namespace visrt::analysis
