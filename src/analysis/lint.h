// visrt/analysis/lint.h
//
// The program linter: pre-execution checks over a launch stream, catching
// program shapes that are legal to run but are either outright wrong
// (interfering privileges inside one task, false partition claims, broken
// trace brackets) or silently waste the analysis (redundant and unused
// privileges, aliased writes that serialize an "index-parallel" launch,
// traces that never replay).  Rule catalog (docs/ANALYSIS.md):
//
//   VL001 partition-claim         declared disjoint/complete contradicts
//                                 the actual subspaces            (error)
//   VL002 privilege-subsumption   one launch holds interfering privileges
//                                 on overlapping data of one field (error)
//   VL003 aliased-write           an index launch writes/reduces
//                                 overlapping data from different point
//                                 tasks — they serialize         (warning)
//   VL004 over-privilege          a requirement is covered by a broader
//                                 one with a subsuming privilege (warning)
//   VL005 unused-privilege        empty-domain or duplicate
//                                 requirement                    (warning)
//   VL006 trace-shape             unbalanced/nested/empty traces, or a
//                                 trace re-executed with a different
//                                 launch sequence          (error/warning)
//   VL007 redundant-edge-producer a requirement whose every induced
//                                 dependence edge is transitively implied
//                                 by the launch's other requirements — it
//                                 grants data access but adds no ordering
//                                 (detected with the order-maintenance
//                                 structure)                    (warning)
//
// The linter is engine-independent: input is the forest plus a stream of
// LintEvents (the fuzzer's ProgramSpec lowers to it via
// fuzz::lint_events; runtime front ends can build it directly).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "region/region_tree.h"
#include "visibility/engine.h"
#include "visibility/privilege.h"

namespace visrt::analysis {

enum class LintRule : std::uint8_t {
  PartitionClaim,
  PrivilegeSubsumption,
  AliasedWrite,
  OverPrivilege,
  UnusedPrivilege,
  TraceShape,
  RedundantEdges,
};

/// Stable rule id, e.g. "VL001".
const char* lint_rule_id(LintRule rule);
/// Short rule name, e.g. "partition-claim".
const char* lint_rule_name(LintRule rule);

enum class LintSeverity : std::uint8_t { Warning, Error };

struct LintFinding {
  LintRule rule = LintRule::PartitionClaim;
  LintSeverity severity = LintSeverity::Warning;
  /// Stream position the finding anchors to; SIZE_MAX for forest-level
  /// findings (partition claims).
  std::size_t item = SIZE_MAX;
  std::string message;
};

/// One requirement of an index launch: each point task `color` receives
/// `subregion(partition, color)` with the given privilege.
struct LintIndexReq {
  PartitionHandle partition;
  FieldID field = 0;
  Privilege privilege;
  friend bool operator==(const LintIndexReq&, const LintIndexReq&) = default;
};

/// One element of the launch stream, in lint's engine-independent form.
struct LintEvent {
  enum class Kind : std::uint8_t {
    Task,
    Index,
    BeginTrace,
    EndTrace,
    EndIteration,
  };
  Kind kind = Kind::Task;
  std::vector<Requirement> requirements;        ///< Kind::Task
  std::vector<LintIndexReq> index_requirements; ///< Kind::Index
  std::uint32_t trace_id = 0;                   ///< Kind::BeginTrace
};

struct LintOptions {
  /// Cap on retained findings; counts stay exact.
  std::size_t max_findings = 64;
};

struct LintReport {
  std::vector<LintFinding> findings; ///< errors first, then warnings
  std::size_t errors = 0;
  std::size_t warnings = 0;

  bool clean() const { return errors == 0 && warnings == 0; }
  /// No errors (warnings allowed) — the gate the oracle and CI use.
  bool ok() const { return errors == 0; }

  std::string summary() const;
  /// Machine-readable report (schema_version 1, docs/ANALYSIS.md).
  std::string to_json() const;
};

/// Lint a launch stream against the forest it runs on.
LintReport lint(const RegionTreeForest& forest,
                std::span<const LintEvent> stream,
                const LintOptions& options = {});

} // namespace visrt::analysis
