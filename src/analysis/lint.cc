#include "analysis/lint.h"

#include <map>
#include <set>
#include <sstream>

#include "common/order_maintenance.h"
#include "obs/metrics.h"

namespace visrt::analysis {

const char* lint_rule_id(LintRule rule) {
  switch (rule) {
  case LintRule::PartitionClaim: return "VL001";
  case LintRule::PrivilegeSubsumption: return "VL002";
  case LintRule::AliasedWrite: return "VL003";
  case LintRule::OverPrivilege: return "VL004";
  case LintRule::UnusedPrivilege: return "VL005";
  case LintRule::TraceShape: return "VL006";
  case LintRule::RedundantEdges: return "VL007";
  }
  return "?";
}

const char* lint_rule_name(LintRule rule) {
  switch (rule) {
  case LintRule::PartitionClaim: return "partition-claim";
  case LintRule::PrivilegeSubsumption: return "privilege-subsumption";
  case LintRule::AliasedWrite: return "aliased-write";
  case LintRule::OverPrivilege: return "over-privilege";
  case LintRule::UnusedPrivilege: return "unused-privilege";
  case LintRule::TraceShape: return "trace-shape";
  case LintRule::RedundantEdges: return "redundant-edge-producer";
  }
  return "?";
}

namespace {

/// Can a task holding privilege `outer` do everything one holding `inner`
/// can?  read-write subsumes everything (a task may read, write, or fold
/// by hand); weaker privileges subsume only themselves.
bool subsumes(const Privilege& outer, const Privilege& inner) {
  if (outer.is_write()) return true;
  return outer == inner;
}

class Linter {
public:
  Linter(const RegionTreeForest& forest, std::span<const LintEvent> stream,
         const LintOptions& options)
      : forest_(forest), stream_(stream), options_(options) {}

  LintReport run() {
    check_partition_claims();
    for (std::size_t i = 0; i < stream_.size(); ++i) {
      const LintEvent& ev = stream_[i];
      switch (ev.kind) {
      case LintEvent::Kind::Task: check_task(i, ev); break;
      case LintEvent::Kind::Index: check_index(i, ev); break;
      case LintEvent::Kind::BeginTrace:
      case LintEvent::Kind::EndTrace:
      case LintEvent::Kind::EndIteration: break;
      }
    }
    check_traces();
    check_redundant_edges();

    LintReport report;
    report.errors = errors_.size();
    report.warnings = warnings_.size();
    report.findings = std::move(errors_);
    report.findings.insert(report.findings.end(), warnings_.begin(),
                           warnings_.end());
    if (report.findings.size() > options_.max_findings)
      report.findings.resize(options_.max_findings);
    return report;
  }

private:
  void add(LintRule rule, LintSeverity severity, std::size_t item,
           std::string message) {
    auto& sink = severity == LintSeverity::Error ? errors_ : warnings_;
    sink.push_back(LintFinding{rule, severity, item, std::move(message)});
  }

  /// VL001: a committed partition whose declared disjoint/complete flags
  /// contradict its actual subspaces (possible in release builds, where
  /// claims are trusted without the debug-mode cross-check).
  void check_partition_claims() {
    for (std::uint32_t p = 0; p < forest_.num_partitions(); ++p) {
      PartitionHandle ph{p};
      if (!forest_.is_claimed(ph)) continue; // computed flags can't be wrong
      std::span<const RegionHandle> children = forest_.children(ph);
      std::vector<IntervalSet> domains;
      domains.reserve(children.size());
      IntervalSet all_union;
      for (RegionHandle child : children) {
        domains.push_back(forest_.domain(child));
        all_union = all_union.unite(domains.back());
      }
      bool disjoint = all_pairwise_disjoint(domains);
      bool complete = all_union == forest_.domain(forest_.parent_of(ph));
      if (disjoint != forest_.is_disjoint(ph)) {
        std::ostringstream os;
        os << "partition '" << forest_.name(ph) << "' is declared "
           << (forest_.is_disjoint(ph) ? "disjoint" : "aliased")
           << " but its subspaces are "
           << (disjoint ? "pairwise disjoint" : "overlapping");
        add(LintRule::PartitionClaim, LintSeverity::Error, SIZE_MAX,
            os.str());
      }
      if (complete != forest_.is_complete(ph)) {
        std::ostringstream os;
        os << "partition '" << forest_.name(ph) << "' is declared "
           << (forest_.is_complete(ph) ? "complete" : "incomplete")
           << " but its subspaces "
           << (complete ? "cover" : "do not cover") << " the parent";
        add(LintRule::PartitionClaim, LintSeverity::Error, SIZE_MAX,
            os.str());
      }
    }
  }

  /// VL002 / VL004 / VL005 over one task's requirement list.
  void check_reqs(std::size_t item, std::span<const Requirement> reqs,
                  const char* what) {
    for (std::size_t j = 0; j < reqs.size(); ++j) {
      const Requirement& rj = reqs[j];
      const IntervalSet& dj = forest_.domain(rj.region);
      if (dj.empty()) {
        std::ostringstream os;
        os << what << " requirement " << j << " on "
           << forest_.name(rj.region)
           << " has an empty domain; its privilege can never be used";
        add(LintRule::UnusedPrivilege, LintSeverity::Warning, item, os.str());
      }
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (i == j) continue;
        const Requirement& ri = reqs[i];
        if (ri.field != rj.field) continue;
        const IntervalSet& di = forest_.domain(ri.region);
        if (i < j && ri.region == rj.region) {
          std::ostringstream os;
          os << what << " names " << forest_.name(rj.region) << " field "
             << rj.field << " twice (requirements " << i << " and " << j
             << "); the duplicate is unused";
          add(LintRule::UnusedPrivilege, LintSeverity::Warning, item,
              os.str());
          continue;
        }
        if (i < j && di.overlaps(dj) &&
            interferes(ri.privilege, rj.privilege)) {
          std::ostringstream os;
          os << what << " holds interfering privileges ("
             << to_string(ri.privilege) << " vs " << to_string(rj.privilege)
             << ") on overlapping regions " << forest_.name(ri.region)
             << " and " << forest_.name(rj.region) << " of field " << rj.field
             << "; in-task ordering is undefined (the paper forbids aliased "
                "interfering arguments)";
          add(LintRule::PrivilegeSubsumption, LintSeverity::Error, item,
              os.str());
          continue;
        }
        if (ri.region != rj.region && di.contains(dj) &&
            !interferes(ri.privilege, rj.privilege) &&
            subsumes(ri.privilege, rj.privilege) && (di != dj || i < j)) {
          std::ostringstream os;
          os << what << " requirement " << j << " ("
             << to_string(rj.privilege) << " on " << forest_.name(rj.region)
             << ") is covered by requirement " << i << " ("
             << to_string(ri.privilege) << " on " << forest_.name(ri.region)
             << ") and can be dropped";
          add(LintRule::OverPrivilege, LintSeverity::Warning, item, os.str());
        }
      }
    }
  }

  void check_task(std::size_t item, const LintEvent& ev) {
    check_reqs(item, ev.requirements, "task");
  }

  /// Index launches: per-point requirement checks (VL002/4/5 on the
  /// expanded point task) plus VL003, cross-point interference — point
  /// tasks of one index launch are meant to run in parallel, so any
  /// interference between two colors serializes them.
  void check_index(std::size_t item, const LintEvent& ev) {
    if (ev.index_requirements.empty()) return;
    std::size_t colors = SIZE_MAX;
    for (const LintIndexReq& req : ev.index_requirements)
      colors = std::min(colors, forest_.partition_size(req.partition));

    for (std::size_t c = 0; c < colors; ++c) {
      std::vector<Requirement> point;
      point.reserve(ev.index_requirements.size());
      for (const LintIndexReq& req : ev.index_requirements)
        point.push_back(Requirement{forest_.subregion(req.partition, c),
                                    req.field, req.privilege});
      check_reqs(item, point, "index-launch point task");
    }

    for (std::size_t c1 = 0; c1 < colors; ++c1) {
      for (std::size_t c2 = c1 + 1; c2 < colors; ++c2) {
        for (const LintIndexReq& ri : ev.index_requirements) {
          for (const LintIndexReq& rj : ev.index_requirements) {
            if (ri.field != rj.field) continue;
            if (!interferes(ri.privilege, rj.privilege)) continue;
            RegionHandle a = forest_.subregion(ri.partition, c1);
            RegionHandle b = forest_.subregion(rj.partition, c2);
            if (!forest_.domain(a).overlaps(forest_.domain(b))) continue;
            std::ostringstream os;
            os << "index launch points " << c1 << " and " << c2
               << " interfere (" << to_string(ri.privilege) << " on "
               << forest_.name(a) << " vs " << to_string(rj.privilege)
               << " on " << forest_.name(b) << ", partition '"
               << forest_.name(ri.partition)
               << "' is aliased): the points serialize instead of running "
                  "in parallel";
            add(LintRule::AliasedWrite, LintSeverity::Warning, item,
                os.str());
            return; // one witness per index launch is enough
          }
        }
      }
    }
  }

  /// VL006: trace bracket shape and replayability.
  void check_traces() {
    bool active = false;
    std::uint32_t active_id = 0;
    std::size_t begin_item = 0;
    std::vector<const LintEvent*> body;
    std::map<std::uint32_t, std::vector<LintEvent>> first_bodies;

    auto close_body = [&](std::size_t item) {
      if (body.empty()) {
        std::ostringstream os;
        os << "trace " << active_id
           << " contains no launches; the bracket memoizes nothing";
        add(LintRule::TraceShape, LintSeverity::Warning, item, os.str());
      }
      auto it = first_bodies.find(active_id);
      if (it == first_bodies.end()) {
        std::vector<LintEvent>& first = first_bodies[active_id];
        for (const LintEvent* ev : body) first.push_back(*ev);
        return;
      }
      bool same = it->second.size() == body.size();
      for (std::size_t k = 0; same && k < body.size(); ++k) {
        const LintEvent& a = it->second[k];
        const LintEvent& b = *body[k];
        same = a.kind == b.kind && a.requirements == b.requirements &&
               a.index_requirements == b.index_requirements;
      }
      if (!same) {
        std::ostringstream os;
        os << "trace " << active_id
           << " repeats with a different launch sequence; its memoized "
              "analysis will be invalidated and re-captured";
        add(LintRule::TraceShape, LintSeverity::Warning, item, os.str());
      }
    };

    for (std::size_t i = 0; i < stream_.size(); ++i) {
      const LintEvent& ev = stream_[i];
      switch (ev.kind) {
      case LintEvent::Kind::BeginTrace:
        if (active) {
          add(LintRule::TraceShape, LintSeverity::Error, i,
              "begin_trace inside an active trace; traces cannot nest");
        } else {
          active = true;
          active_id = ev.trace_id;
          begin_item = i;
          body.clear();
        }
        break;
      case LintEvent::Kind::EndTrace:
        if (!active) {
          add(LintRule::TraceShape, LintSeverity::Error, i,
              "end_trace without a matching begin_trace");
        } else {
          close_body(i);
          active = false;
        }
        break;
      case LintEvent::Kind::Task:
      case LintEvent::Kind::Index:
        if (active) body.push_back(&ev);
        break;
      case LintEvent::Kind::EndIteration: break;
      }
    }
    if (active) {
      std::ostringstream os;
      os << "trace " << active_id << " opened at stream position "
         << begin_item << " is never closed";
      add(LintRule::TraceShape, LintSeverity::Error, begin_item, os.str());
    }
  }

  /// VL007: a requirement is a pure-redundant edge producer when every
  /// dependence edge it would induce (against each earlier interfering
  /// launch) is transitively implied through edges the launch's *other*
  /// requirements induce.  Dropping it would leave the launch's position
  /// in the dependence order unchanged — the privilege grants data access
  /// but re-states ordering that already exists.  Detection replays the
  /// launch stream into an order-maintenance structure so each implied-by
  /// test is an O(1) precedes() query.  (The edge from a launch's newest
  /// partner can never be implied, so a single-requirement launch is
  /// never flagged; the rule only fires when ordering responsibilities
  /// split across requirements.)
  void check_redundant_edges() {
    OrderMaintenance order;
    std::vector<std::vector<Requirement>> launches; // node id -> lowered reqs
    for (std::size_t i = 0; i < stream_.size(); ++i) {
      const LintEvent& ev = stream_[i];
      std::vector<Requirement> reqs;
      const char* what = "task";
      if (ev.kind == LintEvent::Kind::Task) {
        reqs = ev.requirements;
      } else if (ev.kind == LintEvent::Kind::Index) {
        // For cross-launch ordering an index launch acts as one holder of
        // each privilege over the partition's parent (the union of its
        // points).
        what = "index launch";
        for (const LintIndexReq& r : ev.index_requirements)
          reqs.push_back(Requirement{forest_.parent_of(r.partition), r.field,
                                     r.privilege});
      } else {
        continue;
      }

      const std::uint64_t id = launches.size();
      // partners[j]: earlier launches requirement j interferes with.
      std::vector<std::vector<std::uint64_t>> partners(reqs.size());
      std::set<std::uint64_t> all;
      for (std::uint64_t a = 0; a < id; ++a) {
        for (std::size_t j = 0; j < reqs.size(); ++j) {
          const IntervalSet& dj = forest_.domain(reqs[j].region);
          for (const Requirement& ra : launches[a]) {
            if (ra.field != reqs[j].field) continue;
            if (!interferes(ra.privilege, reqs[j].privilege)) continue;
            if (!forest_.domain(ra.region).overlaps(dj)) continue;
            partners[j].push_back(a);
            all.insert(a);
            break;
          }
        }
      }

      for (std::size_t j = 0; reqs.size() > 1 && j < reqs.size(); ++j) {
        if (partners[j].empty()) continue;
        std::set<std::uint64_t> others;
        for (std::size_t k = 0; k < reqs.size(); ++k)
          if (k != j) others.insert(partners[k].begin(), partners[k].end());
        bool redundant = true;
        bool used_path = false; // at least one genuinely transitive proof
        for (std::uint64_t a : partners[j]) {
          if (others.count(a)) continue; // the edge exists regardless
          bool implied = false;
          for (std::uint64_t q : others)
            if (order.precedes(a, q)) { // a => q -> this launch
              implied = true;
              used_path = true;
              break;
            }
          if (!implied) {
            redundant = false;
            break;
          }
        }
        // Require a real transitive implication: when the requirements
        // merely share partners, neither is singled out as the redundant
        // one and flagging both would invite dropping both.
        if (!redundant || !used_path) continue;
        std::ostringstream os;
        os << what << " requirement " << j << " ("
           << to_string(reqs[j].privilege) << " on "
           << forest_.name(reqs[j].region) << " field " << reqs[j].field
           << ") only induces dependence edges (" << partners[j].size()
           << ") that are transitively implied by the launch's other "
              "requirements; it adds data access but no ordering";
        add(LintRule::RedundantEdges, LintSeverity::Warning, i, os.str());
      }

      order.add_node(id);
      for (std::uint64_t a : all) order.add_edge(a, id);
      launches.push_back(std::move(reqs));
    }
  }

  const RegionTreeForest& forest_;
  std::span<const LintEvent> stream_;
  const LintOptions& options_;
  std::vector<LintFinding> errors_;
  std::vector<LintFinding> warnings_;
};

} // namespace

LintReport lint(const RegionTreeForest& forest,
                std::span<const LintEvent> stream,
                const LintOptions& options) {
  return Linter(forest, stream, options).run();
}

std::string LintReport::summary() const {
  if (clean()) return "lint: clean";
  std::ostringstream os;
  os << "lint: " << errors << " error" << (errors == 1 ? "" : "s") << ", "
     << warnings << " warning" << (warnings == 1 ? "" : "s");
  return os.str();
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"errors\":" << errors
     << ",\"warnings\":" << warnings << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    os << (i ? "," : "") << "{\"rule\":\"" << lint_rule_id(f.rule)
       << "\",\"name\":\"" << lint_rule_name(f.rule) << "\",\"severity\":\""
       << (f.severity == LintSeverity::Error ? "error" : "warning") << "\"";
    if (f.item != SIZE_MAX) os << ",\"item\":" << f.item;
    os << ",\"message\":\"" << obs::json_escape(f.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

} // namespace visrt::analysis
