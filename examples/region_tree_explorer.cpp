// region_tree_explorer: replays the paper's Figure 5 task stream against
// each engine and dumps the internal state the paper illustrates —
// the painter's composite views (Figure 8), Warnock's equivalence-set
// refinements (Figure 10), and ray casting's coalescing behaviour.
//
// Run:  ./region_tree_explorer
#include <cstdio>

#include "realm/reduction_ops.h"
#include "visibility/dep_graph.h"
#include "visibility/engine.h"

using namespace visrt;

namespace {

struct Program {
  RegionTreeForest forest;
  RegionHandle n;
  PartitionHandle p, g;
  FieldID up = 0;
};

Program build() {
  Program prog;
  prog.n = prog.forest.create_root(IntervalSet(0, 29), "N");
  prog.p = prog.forest.create_partition(
      prog.n, {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29)},
      "P");
  prog.g = prog.forest.create_partition(
      prog.n,
      {IntervalSet(10, 11), IntervalSet{{8, 9}, {20, 21}},
       IntervalSet(18, 19)},
      "G");
  return prog;
}

void report(const char* when, CoherenceEngine& engine) {
  EngineStats s = engine.stats();
  std::printf("  %-28s eqsets live/total %2zu/%2zu   composite views "
              "live/total %zu/%zu   history entries %zu\n",
              when, s.live_eqsets, s.total_eqsets_created,
              s.live_composite_views, s.total_composite_views,
              s.history_entries);
}

void replay_figure5(Algorithm algorithm) {
  std::printf("\n=== %s ===\n", algorithm_name(algorithm));
  Program prog = build();
  EngineConfig config;
  config.forest = &prog.forest;
  config.track_values = false;
  auto engine = make_engine(algorithm, config);
  engine->initialize_field(prog.n, prog.up, RegionData<double>{}, 0);

  DepGraph deps;
  LaunchID next = 0;
  auto run = [&](RegionHandle region, Privilege priv, const char* label) {
    LaunchID id = next++;
    deps.add_task(id);
    AnalysisContext ctx{id, static_cast<NodeID>(id % 3), 0};
    Requirement req{region, prog.up, priv};
    MaterializeResult mr = engine->materialize(req, ctx);
    deps.add_edges(id, mr.dependences);
    engine->commit(req, mr.data, ctx);
    std::printf("t%llu = %s:", static_cast<unsigned long long>(id), label);
    if (mr.dependences.empty()) std::printf(" (no dependences)");
    for (LaunchID d : mr.dependences)
      std::printf(" <-t%llu", static_cast<unsigned long long>(d));
    std::printf("\n");
    report("", *engine);
  };

  // Figure 5: t0-t2 write through P.up, t3-t5 reduce through G.up,
  // t6-t8 write through P.up again.
  for (std::size_t i = 0; i < 3; ++i)
    run(prog.forest.subregion(prog.p, i), Privilege::read_write(),
        "t1(P[i]) rw P.up");
  for (std::size_t i = 0; i < 3; ++i)
    run(prog.forest.subregion(prog.g, i), Privilege::reduce(kRedopSum),
        "t2(G[i]) red+ G.up");
  for (std::size_t i = 0; i < 3; ++i)
    run(prog.forest.subregion(prog.p, i), Privilege::read_write(),
        "t1(P[i]) rw P.up");
}

} // namespace

int main() {
  Program prog = build();
  std::printf("The paper's Figure 2(c) region tree:\n%s",
              prog.forest.to_string(prog.n).c_str());

  // Watch each algorithm's internal state evolve over the Figure 5 stream:
  //  - naive-paint: history grows monotonically;
  //  - paint: composite views appear at partition crossings (Figure 8);
  //  - warnock: refinement only — the Figure 10 tree, then stability;
  //  - raycast: the second round of writes coalesces sets back to the
  //    three primary pieces (Section 7).
  for (Algorithm a : {Algorithm::NaivePaint, Algorithm::Paint,
                      Algorithm::Warnock, Algorithm::RayCast}) {
    replay_figure5(a);
  }
  return 0;
}
