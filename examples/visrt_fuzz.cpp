// visrt_fuzz: the differential fuzzing driver.
//
//   visrt_fuzz [--seed N] [--runs N] [--time-budget SECONDS]
//              [--corpus-dir DIR] [--metrics-json FILE] [--stream]
//              [--replay FILE ...]
//
// Each run derives its own seed (base seed + run index), generates a random
// program — random forest, partitions (disjoint/aliased, complete/
// incomplete, nested, image/preimage), fields, individual and index
// launches, traces, random subject engine/DCR/tracing/tuning — and checks
// it differentially against the sequential reference engine (values,
// dependence soundness and precision, DES schedule, crashes).  Failures
// are minimized with the delta-debugging shrinker and appended to the
// corpus directory as .visprog repros; --replay re-checks saved repros.
//
// --stream additionally replays each generated program through the
// streaming ingest path (serve::StreamSession fed in random-sized byte
// chunks, with randomized retirement interval / residency cap / history
// depth) and cross-checks every fingerprint — dependence-graph, schedule,
// per-launch value fold, final field values — against the batch oracle.
//
// Exits 0 when every run passed, 1 when any failed, 2 on usage errors.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "fuzz/shrink.h"
#include "serve/session.h"

using namespace visrt;
using namespace visrt::fuzz;

namespace {

struct CliOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 100;
  double time_budget_s = 0; // 0 = unlimited
  std::string corpus_dir;
  std::string metrics_json;
  std::vector<std::string> replay_files;
  /// Force every generated program onto the paint engine with its
  /// synthetic test-only bug enabled — a self-test that the whole loop
  /// (detect, shrink, save, replay) works end to end.
  bool inject_paint_bug = false;
  /// Cross-check streaming ingest (serve::StreamSession) against the
  /// batch oracle for every generated program.
  bool stream = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: visrt_fuzz [--seed N] [--runs N] "
               "[--time-budget SECONDS]\n"
               "                  [--corpus-dir DIR] [--metrics-json FILE]\n"
               "                  [--stream] [--replay FILE ...]\n");
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "visrt_fuzz: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = value("--seed");
      if (!v) return false;
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--runs") {
      const char* v = value("--runs");
      if (!v) return false;
      opts.runs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--time-budget") {
      const char* v = value("--time-budget");
      if (!v) return false;
      opts.time_budget_s = std::strtod(v, nullptr);
    } else if (arg == "--corpus-dir") {
      const char* v = value("--corpus-dir");
      if (!v) return false;
      opts.corpus_dir = v;
    } else if (arg == "--metrics-json") {
      const char* v = value("--metrics-json");
      if (!v) return false;
      opts.metrics_json = v;
    } else if (arg == "--inject-paint-bug") {
      opts.inject_paint_bug = true;
    } else if (arg == "--stream") {
      opts.stream = true;
    } else if (arg == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        opts.replay_files.push_back(argv[++i]);
      if (opts.replay_files.empty()) {
        std::fprintf(stderr, "visrt_fuzz: --replay needs files\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "visrt_fuzz: unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Append a minimized repro to the corpus; the header comments make the
/// file self-describing.
void save_repro(const std::string& dir, std::uint64_t seed,
                const DiffReport& report, const ShrinkResult& shrunk) {
  std::filesystem::create_directories(dir);
  std::string name = "repro-seed" + std::to_string(seed) + "-" +
                     failure_kind_name(report.kind) + ".visprog";
  std::filesystem::path path = std::filesystem::path(dir) / name;
  std::ofstream os(path);
  os << "# visrt_fuzz minimized repro\n"
     << "# seed: " << seed << "\n"
     << "# failure: " << failure_kind_name(report.kind) << "\n"
     << "# detail: " << report.detail << "\n"
     << "# shrink: " << shrunk.accepted << " reductions in "
     << shrunk.attempts << " attempts\n";
  write_visprog(os, shrunk.spec);
  std::printf("  repro saved to %s\n", path.string().c_str());
}

/// Differential check of the streaming ingest path: serialize the spec,
/// feed it through a serve::StreamSession in random-sized byte chunks
/// under aggressive randomized memory bounding, and compare every
/// fingerprint against the batch oracle.  The session runs with inline
/// verification on (SessionOptions::verify), so an unsound or imprecise
/// dependence graph is caught by the stream itself, reference-free — even
/// when the batch subject shares the same bug.  Returns "" on success.
std::string stream_check(const ProgramSpec& spec, std::uint64_t run_seed) {
  RunResult batch = run_program(spec);
  if (batch.crashed) return ""; // the batch check reports crashes itself

  std::ostringstream text;
  write_visprog(text, spec);
  const std::string prog = text.str();

  Rng rng(run_seed ^ 0x5eedf00dULL);
  static constexpr std::size_t kIntervals[] = {1, 2, 3, 5, 8, 16, 64};
  serve::SessionOptions so;
  so.retire_every = kIntervals[rng.below(std::size(kIntervals))];
  so.max_resident_launches =
      rng.chance(0.5) ? 0 : kIntervals[rng.below(std::size(kIntervals))];
  so.max_history_depth = static_cast<std::size_t>(rng.below(5)); // 0..4
  so.verify = true;
  std::vector<std::string> errors;
  so.on_error = [&errors](const std::string& e) { errors.push_back(e); };
  const std::size_t retire_every = so.retire_every;
  const std::size_t history_depth = so.max_history_depth;

  serve::StreamSession session(std::move(so));
  try {
    ScopedCheckThrows guard; // invariant trips become catchable
    std::size_t off = 0;
    while (off < prog.size()) {
      std::size_t n = std::min<std::size_t>(prog.size() - off,
                                            1 + rng.below(96));
      session.feed(std::string_view(prog).substr(off, n));
      off += n;
    }
    session.finish();
  } catch (const std::exception& e) {
    return std::string("stream session crashed: ") + e.what();
  }
  for (const std::string& e : errors)
    if (e.rfind("verify: ", 0) != 0)
      return "stream session rejected a statement: " + e;

  const serve::SessionResult& r = session.result();
  if (r.verify.has_value() && !(r.verify->sound() && r.verify->precise())) {
    std::string msg = "stream verification: " + r.verify->summary();
    if (!r.verify->violations.empty())
      msg += " — " + r.verify->violations.front().detail;
    return msg + " retire_every=" + std::to_string(retire_every);
  }
  auto mismatch = [&](const char* what) {
    return std::string("stream/batch divergence (") + what +
           ") retire_every=" + std::to_string(retire_every) +
           " history_depth=" + std::to_string(history_depth);
  };
  if (r.launches != batch.launch_hashes.size())
    return mismatch("launches") + " stream=" + std::to_string(r.launches) +
           " batch=" + std::to_string(batch.launch_hashes.size());
  if (r.dep_edges != batch.dep_edges) return mismatch("dep_edges");
  if (r.dep_graph_hash != batch.dep_graph_hash)
    return mismatch("dep_graph_hash");
  if (r.schedule_hash != batch.schedule_hash) return mismatch("schedule_hash");
  if (r.value_hash != serve::fold_value_hashes(batch.launch_hashes))
    return mismatch("value_hash");
  if (r.final_hashes != batch.final_hashes) return mismatch("final_hashes");
  return "";
}

int replay_mode(const CliOptions& opts) {
  int failures = 0;
  for (const std::string& file : opts.replay_files) {
    std::ifstream is(file);
    if (!is) {
      std::fprintf(stderr, "visrt_fuzz: cannot open %s\n", file.c_str());
      return 2;
    }
    ProgramSpec spec;
    try {
      spec = read_visprog(is);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "visrt_fuzz: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
    DiffReport report = check_program(spec);
    if (report) {
      ++failures;
      std::printf("%s: FAIL (%s) %s\n", file.c_str(),
                  failure_kind_name(report.kind), report.detail.c_str());
    } else {
      std::printf("%s: ok (%s)\n", file.c_str(),
                  algorithm_name(spec.subject));
    }
  }
  return failures ? 1 : 0;
}

} // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (!opts.replay_files.empty()) return replay_mode(opts);

  auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::size_t executed = 0, failures = 0, total_launches = 0;
  std::map<std::string, std::size_t> failures_by_kind;
  for (std::size_t run = 0; run < opts.runs; ++run) {
    if (opts.time_budget_s > 0 && elapsed_s() >= opts.time_budget_s) {
      std::printf("time budget reached after %zu runs\n", executed);
      break;
    }
    std::uint64_t run_seed = opts.seed + run;
    Rng rng(run_seed);
    ProgramSpec spec = generate_program(rng);
    if (opts.inject_paint_bug) {
      spec.subject = Algorithm::Paint;
      spec.tuning.inject_paint_reduce_bug = true;
    }
    total_launches += expand_stream(spec).size();
    DiffReport report = check_program(spec);
    ++executed;
    // The stream check runs regardless of the batch verdict: its inline
    // verification is reference-free, so it must catch an engine bug even
    // when the differential oracle already has (or, with the oracle out of
    // the picture, would be the only detector).
    if (opts.stream) {
      std::string diverged = stream_check(spec, run_seed);
      if (!diverged.empty()) {
        ++failures;
        ++failures_by_kind["stream"];
        std::printf("seed %llu: FAIL (stream) subject=%s: %s\n",
                    static_cast<unsigned long long>(run_seed),
                    algorithm_name(spec.subject), diverged.c_str());
        continue; // the shrinker minimizes batch oracles, not stream runs
      }
    }
    if (!report) continue;

    ++failures;
    ++failures_by_kind[failure_kind_name(report.kind)];
    std::printf("seed %llu: FAIL (%s) subject=%s: %s\n",
                static_cast<unsigned long long>(run_seed),
                failure_kind_name(report.kind),
                algorithm_name(spec.subject), report.detail.c_str());
    ShrinkResult shrunk = shrink_program(spec, report);
    std::printf("  minimized to %zu stream items / %zu launches\n",
                shrunk.spec.stream.size(),
                expand_stream(shrunk.spec).size());
    if (!opts.corpus_dir.empty())
      save_repro(opts.corpus_dir, run_seed, report, shrunk);
  }

  double elapsed = elapsed_s();
  std::printf("%zu runs, %zu launches, %zu failures (%.2fs)\n", executed,
              total_launches, failures, elapsed);

  if (!opts.metrics_json.empty()) {
    std::ofstream os(opts.metrics_json);
    os << "{\n"
       << "  \"seed\": " << opts.seed << ",\n"
       << "  \"runs\": " << executed << ",\n"
       << "  \"launches\": " << total_launches << ",\n"
       << "  \"failures\": " << failures << ",\n"
       << "  \"elapsed_s\": " << elapsed << ",\n"
       << "  \"failures_by_kind\": {";
    bool first = true;
    for (const auto& [kind, count] : failures_by_kind) {
      os << (first ? "" : ",") << "\n    \"" << kind << "\": " << count;
      first = false;
    }
    os << (failures_by_kind.empty() ? "" : "\n  ") << "}\n}\n";
  }
  return failures ? 1 : 0;
}
