// visrt_cli: run any benchmark application under any configuration from
// the command line and print the run statistics — a one-stop driver for
// poking at the system.
//
// Usage:
//   visrt_cli <app> <algorithm> [options]
//     app        stencil | circuit | pennant
//     algorithm  paint | warnock | raycast | naive-paint | naive-warnock |
//                naive-raycast | reference
//   options:
//     --nodes N        simulated machine size (default 4)
//     --pieces N       pieces (default = nodes; apps round to their grid)
//     --iters N        iterations (default 5)
//     --dcr            enable dynamic control replication
//     --trace          enable the tracing extension
//     --no-values      analysis-only mode (skip kernels and validation)
//     --size N         per-piece problem scale (default app-specific)
//     --verify         spy-verify the emitted dependence graph and DES
//                      schedule after the run (docs/ANALYSIS.md); the
//                      process exits nonzero on any violation
//     --trace-out F    write a chrome://tracing / Perfetto JSON timeline
//                      (with counter tracks + flow arrows) to file F
//                      (--chrome-trace is an alias)
//     --metrics-json F write the run's JSON metrics (schema in
//                      docs/OBSERVABILITY.md) to file F
//
//   visrt_cli verify <file-or-dir>... [options]
//     Static verification of .visprog programs: lints each program, then
//     executes it under every engine (or one, with --engine) with and
//     without DCR and spy-verifies the emitted dependence graph against
//     ground truth recomputed from geometry and privileges.  Exits
//     nonzero on any lint error, soundness or precision violation.
//     --engine NAME    verify one engine instead of all six
//     --json F         write a machine-readable report to file F
//
//   visrt_cli explain <prog.visprog> --edge A,B [options]
//     Why does (or doesn't) the dependence edge A -> B exist?  Runs the
//     program with provenance recording and prints the causal chain —
//     which engine phase emitted the edge, through which equivalence set,
//     on which region-tree node, with which privilege pair — or, when
//     there is no edge, the recomputed interference verdict explaining
//     why.  Runs every engine and flags disagreements.
//     --engine NAME    explain one engine only (default: all, with the
//                      spec's subject engine reported in detail)
//     --threads N      analysis thread count override
//     --shard-batch N  shard batch granularity override (0 = default)
//
//   visrt_cli inspect <prog.visprog> [options]
//     Equivalence-set lifecycle introspection: per-field population /
//     refinement-depth / coalesce time-series on the launch clock, plus
//     the per-node message ledger (root fan-in) and the analysis
//     executor (threads, shard groups, serial fraction).
//     --engine NAME    engine override (default: the spec's subject)
//     --threads N      analysis thread count override
//     --shard-batch N  shard batch granularity override (0 = default)
//     --metrics-json F deterministic schema-v2 metrics (bit-identical
//                      across --threads values except the "executor"
//                      section, which reports host execution)
//     --trace-out F    Perfetto timeline with lifecycle counter tracks
//
//   visrt_cli profile <app|prog.visprog> [options]
//     Contention-aware scaling profile (docs/PERFORMANCE.md): run the
//     target once per thread count with the analysis profiler on, then
//     print the per-phase attribution (parallel shard scans vs the
//     serial canonical-order merges / provenance / other bookkeeping),
//     the measured serial fraction with its Amdahl speedup bound, lock
//     contention, and the top serialization sources.  Structure fields
//     (phase labels, event counts) are asserted byte-identical across
//     the sweep; the process exits nonzero when they diverge.
//     Apps default to the fig13 weak-scaling shape (circuit: 200 nodes
//     and 300 wires per piece).
//     --engine NAME        engine (default raycast; programs: the spec's
//                          subject)
//     --dcr                enable DCR (apps only)
//     --nodes N            simulated machine size (default 16)
//     --iters N            iterations (default 5)
//     --size N             per-piece problem scale (default app-specific)
//     --threads-sweep LIST analysis thread counts, e.g. 1,2,4,8
//                          (default 1)
//     --shard-batch N      shard batch granularity override (0 = default)
//     --top N              serialization sources to name (default 5)
//     --json F             machine-readable report (schema v1)
//     --trace-out F        profiler wall-clock Perfetto timeline of the
//                          last sweep run
//
//   visrt_cli serve (--socket PATH | --stdin) [options]
//     Streaming analysis daemon (docs/SERVING.md): accepts `.visprog` IR
//     as a line-oriented stream over a local AF_UNIX socket (one session
//     per connection, concurrent sessions multiplexed) or on stdin, runs
//     dependence analysis incrementally per arriving launch, and retires
//     completed dependence-graph prefixes so memory stays bounded over
//     unbounded streams.  `@metrics` on any connection returns a one-line
//     schema-v2 metrics JSON with a "serve" section; `@end` (or EOF)
//     finishes the session and returns its result hashes.  SIGTERM/SIGINT
//     drain gracefully: in-flight sessions finish and reply.
//     --engine NAME              engine override (default: each stream's
//                                configured subject)
//     --threads N                analysis thread count override
//     --shard-batch N            shard batch granularity override
//                                (0 = default)
//     --retire-interval N        retire every N ingested launches
//                                (default 1024; 0 = only when forced)
//     --max-resident-launches N  residency cap forcing retirement
//                                (default 8192; 0 = uncapped)
//     --max-history-depth N      per-eq-set history depth before value
//                                payloads collapse into a composite view
//                                (default 64; 0 = never)
//     --no-values                analysis-only ingest (skip task bodies)
//     --metrics-json F           write the final metrics line to file F
//                                at shutdown
//
//   Global: --log-json switches stderr logging to one JSON object per
//   line.
//
// Examples:
//   visrt_cli circuit warnock --nodes 64 --dcr --no-values
//   visrt_cli stencil raycast --trace --verify
//   visrt_cli verify tests/corpus --json verify.json
//   visrt_cli explain tests/corpus/figure5_stream.visprog --edge 0,3
//   visrt_cli inspect tests/corpus/figure5_stream.visprog --metrics-json m.json
//   visrt_cli profile circuit --dcr --nodes 256 --threads-sweep 1,8
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/lint.h"
#include "analysis/spy.h"
#include "apps/circuit.h"
#include "apps/pennant.h"
#include "apps/stencil.h"
#include "common/log.h"
#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "obs/flight.h"
#include "obs/lifecycle.h"
#include "obs/metrics.h"
#include "serve/server.h"

using namespace visrt;

namespace {

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  for (Algorithm a :
       {Algorithm::Paint, Algorithm::Warnock, Algorithm::RayCast,
        Algorithm::NaivePaint, Algorithm::NaiveWarnock,
        Algorithm::NaiveRayCast, Algorithm::Reference}) {
    if (name == algorithm_name(a)) return a;
  }
  return std::nullopt;
}

struct Options {
  std::string app;
  Algorithm algorithm = Algorithm::RayCast;
  std::uint32_t nodes = 4;
  std::uint32_t pieces = 0; // 0: use nodes
  int iters = 5;
  bool dcr = false;
  bool trace = false;
  bool values = true;
  bool verify = false;
  coord_t size = 0; // 0: app default
  std::string chrome_trace; // empty: no timeline export
  std::string metrics_json; // empty: no metrics file
};

int usage() {
  std::fprintf(stderr,
               "usage: visrt_cli <stencil|circuit|pennant> <algorithm> "
               "[--nodes N] [--pieces N] [--iters N] [--dcr] [--trace] "
               "[--no-values] [--size N] [--verify] [--trace-out F] "
               "[--metrics-json F]\n"
               "       visrt_cli verify <file-or-dir>... [--engine NAME] "
               "[--json F] [--metrics-json F]\n"
               "       visrt_cli explain <prog.visprog> --edge A,B "
               "[--engine NAME] [--threads N] [--shard-batch N]\n"
               "       visrt_cli inspect <prog.visprog> [--engine NAME] "
               "[--threads N] [--shard-batch N] [--metrics-json F] "
               "[--trace-out F]\n"
               "       visrt_cli profile <app|prog.visprog> [--engine NAME] "
               "[--dcr] [--nodes N] [--iters N] [--size N] "
               "[--threads-sweep LIST] [--shard-batch N] [--top N] [--json F] "
               "[--trace-out F]\n"
               "       visrt_cli serve (--socket PATH | --stdin) "
               "[--engine NAME] [--threads N] [--shard-batch N] "
               "[--retire-interval N] "
               "[--max-resident-launches N] [--max-history-depth N] "
               "[--no-values] [--verify] [--metrics-json F]\n"
               "       (any form accepts --log-json)\n");
  return 2;
}

// --- static verification (`visrt_cli verify`) ------------------------------

/// Print the retained violations of a spy report, indented.
void print_violations(const analysis::SpyReport& report) {
  for (const analysis::SpyViolation& v : report.violations)
    std::printf("    [%s] launches %u -> %u: %s\n",
                analysis::spy_violation_kind_name(v.kind),
                static_cast<unsigned>(v.earlier),
                static_cast<unsigned>(v.later), v.detail.c_str());
}

int run_verify(std::vector<std::string> args) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::optional<Algorithm> engine_filter;
  std::string json_path;
  std::string metrics_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--engine" && i + 1 < args.size()) {
      engine_filter = parse_algorithm(args[++i]);
      if (!engine_filter) {
        std::fprintf(stderr, "verify: unknown engine '%s'\n",
                     args[i].c_str());
        return 2;
      }
    } else if (args[i] == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (args[i] == "--metrics-json" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (fs::is_directory(args[i])) {
      for (const auto& entry : fs::directory_iterator(args[i]))
        if (entry.path().extension() == ".visprog")
          files.push_back(entry.path());
    } else if (fs::is_regular_file(args[i])) {
      files.push_back(args[i]);
    } else {
      std::fprintf(stderr, "verify: no such file or directory: %s\n",
                   args[i].c_str());
      return 2;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "verify: no .visprog programs found\n");
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::vector<Algorithm> engines;
  if (engine_filter) {
    engines.push_back(*engine_filter);
  } else {
    engines = {Algorithm::Paint,        Algorithm::Warnock,
               Algorithm::RayCast,      Algorithm::NaivePaint,
               Algorithm::NaiveWarnock, Algorithm::NaiveRayCast};
  }

  bool all_ok = true;
  // Aggregate verification-cost counters for --metrics-json.
  std::size_t total_runs = 0;
  std::size_t total_nodes = 0;
  std::size_t total_edges = 0;
  std::size_t total_interfering = 0;
  std::size_t total_transitive = 0;
  std::size_t total_relabels = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  std::ostringstream json;
  json << "{\"schema_version\":1,\"programs\":[";
  for (std::size_t f = 0; f < files.size(); ++f) {
    const fs::path& path = files[f];
    std::printf("== %s ==\n", path.c_str());
    json << (f ? "," : "") << "{\"file\":\"" << obs::json_escape(path.string())
         << "\"";

    fuzz::ProgramSpec spec;
    try {
      std::ifstream is(path);
      spec = fuzz::read_visprog(is);
    } catch (const std::exception& e) {
      std::printf("  parse error: %s\n", e.what());
      json << ",\"parse_error\":\"" << obs::json_escape(e.what()) << "\"}";
      all_ok = false;
      continue;
    }

    fuzz::BuiltForest built;
    fuzz::build_forest(spec, built);
    analysis::LintReport lint_report =
        analysis::lint(built.forest, fuzz::lint_events(spec, built));
    std::printf("  %s\n", lint_report.summary().c_str());
    for (const analysis::LintFinding& finding : lint_report.findings)
      std::printf("    [%s %s] %s\n", analysis::lint_rule_id(finding.rule),
                  finding.severity == analysis::LintSeverity::Error
                      ? "error"
                      : "warning",
                  finding.message.c_str());
    if (!lint_report.ok()) all_ok = false;
    json << ",\"lint\":" << lint_report.to_json() << ",\"runs\":[";

    bool first_run = true;
    for (Algorithm engine : engines) {
      for (bool dcr : {false, true}) {
        fuzz::ProgramSpec variant = spec;
        variant.subject = engine;
        variant.dcr = dcr;
        fuzz::SpyCheckResult result = fuzz::spy_check(variant);
        std::printf("  %-14s%s  ", algorithm_name(engine),
                    dcr ? "+dcr" : "    ");
        json << (first_run ? "" : ",") << "{\"engine\":\""
             << algorithm_name(engine) << "\",\"dcr\":" << (dcr ? 1 : 0);
        first_run = false;
        if (result.crashed) {
          std::printf("CRASH: %s\n", result.crash_message.c_str());
          json << ",\"crashed\":true,\"message\":\""
               << obs::json_escape(result.crash_message) << "\"}";
          all_ok = false;
          continue;
        }
        std::printf("%s\n", result.report.summary().c_str());
        print_violations(result.report);
        json << ",\"crashed\":false,\"report\":" << result.report.to_json()
             << "}";
        ++total_runs;
        total_nodes += result.report.launches;
        total_edges += result.report.dep_edges;
        total_interfering += result.report.interfering_pairs;
        total_transitive += result.report.transitive_edges;
        total_relabels += result.report.order_relabels;
        if (!result.report.clean()) all_ok = false;
      }
    }
    json << "]}";
  }
  json << "],\"ok\":" << (all_ok ? "true" : "false") << "}";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str() << "\n";
    if (out) std::printf("report written to %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    std::ofstream out(metrics_path);
    out << "{\"schema_version\":" << obs::kMetricsSchemaVersion
        << ",\"binary\":\"visrt_cli\",\"verify\":{"
        << "\"programs\":" << files.size() << ",\"runs\":" << total_runs
        << ",\"nodes\":" << total_nodes << ",\"edges\":" << total_edges
        << ",\"interfering_pairs\":" << total_interfering
        << ",\"transitive_edges\":" << total_transitive
        << ",\"order_relabels\":" << total_relabels
        << ",\"ok\":" << (all_ok ? "true" : "false")
        << ",\"timing\":{\"wall_s\":" << obs::json_number(wall_s) << "}}}\n";
    if (out) std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  std::printf("verify: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}

// --- dependence provenance (`visrt_cli explain`) ---------------------------

void maybe_export_trace(const Runtime& rt, const std::string& path);
std::string executor_metrics_json(Runtime& rt, unsigned threads);

/// Load a .visprog spec; returns false (after printing) on failure.
bool load_spec(const std::string& path, fuzz::ProgramSpec& spec) {
  try {
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    spec = fuzz::read_visprog(is);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(), e.what());
    return false;
  }
}

/// Render the provenance of the direct edge from -> to, or a placeholder.
std::string edge_provenance_line(const Runtime& rt, LaunchID from,
                                 LaunchID to) {
#if VISRT_PROVENANCE
  if (const obs::EdgeProvenance* p = rt.dep_graph().provenance(from, to))
    return describe_provenance(*p, rt.forest());
#else
  (void)rt;
  (void)from;
  (void)to;
#endif
  return "(no provenance recorded)";
}

/// Why do launches `a` and `b` not interfere?  Recomputed from the launch
/// log, requirement pair by requirement pair.
void print_no_interference(const Runtime& rt, LaunchID a, LaunchID b) {
  std::span<const LaunchRecord> log = rt.launch_log();
  if (a >= log.size() || b >= log.size()) {
    std::printf("  (launch log unavailable)\n");
    return;
  }
  bool shared_field = false;
  for (const Requirement& ra : log[a].requirements) {
    for (const Requirement& rb : log[b].requirements) {
      if (ra.field != rb.field) continue;
      shared_field = true;
      if (!interferes(ra.privilege, rb.privilege)) {
        std::printf("  field %u: %s vs %s do not interfere\n", ra.field,
                    to_string(ra.privilege).c_str(),
                    to_string(rb.privilege).c_str());
        continue;
      }
      const IntervalSet& da = rt.forest().domain(ra.region);
      const IntervalSet& db = rt.forest().domain(rb.region);
      if (!da.overlaps(db)) {
        std::printf("  field %u: domains %s and %s are disjoint\n", ra.field,
                    da.to_string().c_str(), db.to_string().c_str());
      }
    }
  }
  if (!shared_field)
    std::printf("  no requirement pair names the same field\n");
}

/// The verdict of one engine on the edge a -> b.
struct EdgeVerdict {
  bool ran = false;
  bool direct = false;
  bool reaches = false;
  std::string provenance; ///< of the direct edge, when present
};

/// Explain a -> b in detail against one live run (the primary engine).
void explain_in_detail(const Runtime& rt, LaunchID a, LaunchID b) {
  const DepGraph& deps = rt.dep_graph();
  if (deps.has_edge(a, b)) {
    std::printf("direct dependence edge %u -> %u:\n  %s\n",
                static_cast<unsigned>(a), static_cast<unsigned>(b),
                edge_provenance_line(rt, a, b).c_str());
    return;
  }
  if (deps.reaches(a, b)) {
    // Shortest causal chain a -> ... -> b: backward BFS over predecessors.
    std::vector<LaunchID> parent(deps.task_count(), kInvalidLaunch);
    std::vector<LaunchID> queue{b};
    std::vector<bool> seen(deps.task_count(), false);
    seen[b] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      LaunchID cur = queue[head];
      if (cur == a) break;
      for (LaunchID p : deps.preds(cur)) {
        if (seen[p]) continue;
        seen[p] = true;
        parent[p] = cur;
        queue.push_back(p);
      }
    }
    std::printf("no direct edge %u -> %u, but the pair is ordered "
                "transitively:\n",
                static_cast<unsigned>(a), static_cast<unsigned>(b));
    for (LaunchID cur = a; cur != b && cur != kInvalidLaunch;
         cur = parent[cur]) {
      LaunchID next = parent[cur];
      if (next == kInvalidLaunch) break;
      std::printf("  %u -> %u: %s\n", static_cast<unsigned>(cur),
                  static_cast<unsigned>(next),
                  edge_provenance_line(rt, cur, next).c_str());
    }
    return;
  }
  std::printf("no edge %u -> %u because the launches do not interfere:\n",
              static_cast<unsigned>(a), static_cast<unsigned>(b));
  print_no_interference(rt, a, b);
}

int run_explain(std::vector<std::string> args) {
  std::string prog;
  std::optional<Algorithm> engine_override;
  unsigned threads = 0;
  std::size_t shard_batch = 0;
  LaunchID edge_a = kInvalidLaunch, edge_b = kInvalidLaunch;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--edge" && i + 1 < args.size()) {
      unsigned a = 0, b = 0;
      if (std::sscanf(args[++i].c_str(), "%u,%u", &a, &b) != 2) {
        std::fprintf(stderr, "explain: --edge expects A,B (launch ids)\n");
        return 2;
      }
      edge_a = a;
      edge_b = b;
    } else if (args[i] == "--engine" && i + 1 < args.size()) {
      engine_override = parse_algorithm(args[++i]);
      if (!engine_override) {
        std::fprintf(stderr, "explain: unknown engine '%s'\n",
                     args[i].c_str());
        return 2;
      }
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<unsigned>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--shard-batch" && i + 1 < args.size()) {
      shard_batch = static_cast<std::size_t>(std::atol(args[++i].c_str()));
    } else if (prog.empty() && args[i][0] != '-') {
      prog = args[i];
    } else {
      return usage();
    }
  }
  if (prog.empty() || edge_a == kInvalidLaunch) return usage();

  fuzz::ProgramSpec spec;
  if (!load_spec(prog, spec)) return 2;

  std::vector<Algorithm> engines;
  if (engine_override) {
    engines.push_back(*engine_override);
  } else {
    engines = {Algorithm::Paint,        Algorithm::Warnock,
               Algorithm::RayCast,      Algorithm::NaivePaint,
               Algorithm::NaiveWarnock, Algorithm::NaiveRayCast};
  }
  Algorithm primary = engine_override.value_or(spec.subject);

  std::printf("== %s: edge %u -> %u ==\n", prog.c_str(),
              static_cast<unsigned>(edge_a), static_cast<unsigned>(edge_b));
  std::vector<EdgeVerdict> verdicts(engines.size());
  for (std::size_t e = 0; e < engines.size(); ++e) {
    fuzz::LiveRunOptions options;
    options.provenance = true;
    options.analysis_threads = threads;
    options.shard_batch = shard_batch;
    options.subject = engines[e];
    fuzz::LiveRun live = fuzz::run_program_live(spec, options);
    if (live.runtime == nullptr) {
      std::printf("%-14s crashed: %s\n", algorithm_name(engines[e]),
                  live.result.crash_message.c_str());
      continue;
    }
    const Runtime& rt = *live.runtime;
    EdgeVerdict& v = verdicts[e];
    v.ran = true;
    if (std::max(edge_a, edge_b) >= rt.dep_graph().task_count()) {
      std::fprintf(stderr,
                   "explain: launch %u out of range (program has %zu)\n",
                   static_cast<unsigned>(std::max(edge_a, edge_b)),
                   rt.dep_graph().task_count());
      return 2;
    }
    v.direct = rt.dep_graph().has_edge(edge_a, edge_b);
    v.reaches = rt.dep_graph().reaches(edge_a, edge_b);
    if (v.direct) v.provenance = edge_provenance_line(rt, edge_a, edge_b);
    if (engines[e] == primary) {
      std::printf("[%s]\n", algorithm_name(engines[e]));
      explain_in_detail(rt, edge_a, edge_b);
    }
  }

  // Cross-engine comparison: flag disagreement on the direct edge.
  bool any_direct = false, any_not = false;
  for (std::size_t e = 0; e < engines.size(); ++e) {
    if (!verdicts[e].ran) continue;
    (verdicts[e].direct ? any_direct : any_not) = true;
  }
  if (engines.size() > 1) {
    std::printf("\nengines %s:\n",
                any_direct && any_not ? "DISAGREE on the direct edge"
                                      : "agree");
    for (std::size_t e = 0; e < engines.size(); ++e) {
      if (!verdicts[e].ran) continue;
      const EdgeVerdict& v = verdicts[e];
      std::printf("  %-14s %s%s%s\n", algorithm_name(engines[e]),
                  v.direct    ? "direct edge"
                  : v.reaches ? "transitive order only"
                              : "no order",
                  v.provenance.empty() ? "" : ": ",
                  v.provenance.c_str());
    }
  }
  return 0;
}

// --- lifecycle introspection (`visrt_cli inspect`) -------------------------

/// Per-field (launch, live_after) population samples from the ledger.
std::vector<std::pair<LaunchID, std::uint64_t>>
population_series(const obs::LifecycleLedger& ledger, FieldID field) {
  std::vector<std::pair<LaunchID, std::uint64_t>> series;
  for (const obs::LifecycleEvent& ev : ledger.events(field)) {
    if (!series.empty() && series.back().first == ev.launch)
      series.back().second = ev.live_after;
    else
      series.emplace_back(ev.launch, ev.live_after);
  }
  return series;
}

int run_inspect(std::vector<std::string> args) {
  std::string prog, metrics_json, trace_out;
  std::optional<Algorithm> engine_override;
  unsigned threads = 0;
  std::size_t shard_batch = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--engine" && i + 1 < args.size()) {
      engine_override = parse_algorithm(args[++i]);
      if (!engine_override) {
        std::fprintf(stderr, "inspect: unknown engine '%s'\n",
                     args[i].c_str());
        return 2;
      }
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = static_cast<unsigned>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--shard-batch" && i + 1 < args.size()) {
      shard_batch = static_cast<std::size_t>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--metrics-json" && i + 1 < args.size()) {
      metrics_json = args[++i];
    } else if ((args[i] == "--trace-out" || args[i] == "--chrome-trace") &&
               i + 1 < args.size()) {
      trace_out = args[++i];
    } else if (prog.empty() && args[i][0] != '-') {
      prog = args[i];
    } else {
      return usage();
    }
  }
  if (prog.empty()) return usage();

  fuzz::ProgramSpec spec;
  if (!load_spec(prog, spec)) return 2;

  fuzz::LiveRunOptions options;
  options.provenance = true;
  options.telemetry = !trace_out.empty();
  options.profile = true;
  options.analysis_threads = threads;
  options.shard_batch = shard_batch;
  options.subject = engine_override;
  fuzz::LiveRun live = fuzz::run_program_live(spec, options);
  if (live.runtime == nullptr) {
    std::fprintf(stderr, "inspect: run crashed: %s\n",
                 live.result.crash_message.c_str());
    return 1;
  }
  Runtime& rt = *live.runtime;
  Algorithm engine = engine_override.value_or(spec.subject);
  const obs::LifecycleLedger& ledger = rt.lifecycle();

  std::printf("== %s on %s: %zu launches, %zu dependence edges, "
              "%zu with provenance ==\n",
              prog.c_str(), algorithm_name(engine),
              rt.dep_graph().task_count(), rt.dep_graph().edge_count(),
              rt.dep_graph().provenance_count());
  if (ledger.event_count() == 0)
    std::printf("(no lifecycle events: provenance compiled out?)\n");

  for (FieldID field : ledger.fields()) {
    obs::LifecycleSummary s = ledger.summary(field);
    std::printf("field %u: %llu creates, %llu refines, %llu coalesces, "
                "%llu migrates; peak live %llu, max depth %u\n",
                field, static_cast<unsigned long long>(s.creates),
                static_cast<unsigned long long>(s.refines),
                static_cast<unsigned long long>(s.coalesces),
                static_cast<unsigned long long>(s.migrates),
                static_cast<unsigned long long>(s.peak_live), s.max_depth);
    std::vector<std::pair<LaunchID, std::uint64_t>> series =
        population_series(ledger, field);
    // Downsample to at most 16 points for the terminal.
    std::size_t stride = std::max<std::size_t>(1, series.size() / 16);
    std::printf("  live eq-sets over launches:");
    for (std::size_t i = 0; i < series.size(); i += stride) {
      if (series[i].first == kInvalidLaunch)
        std::printf(" init:%llu",
                    static_cast<unsigned long long>(series[i].second));
      else
        std::printf(" %u:%llu", static_cast<unsigned>(series[i].first),
                    static_cast<unsigned long long>(series[i].second));
    }
    if (series.size() > 1 && (series.size() - 1) % stride != 0)
      std::printf(" %u:%llu",
                  static_cast<unsigned>(series.back().first),
                  static_cast<unsigned long long>(series.back().second));
    std::printf("\n");
  }

  const sim::MessageLedger& messages = rt.message_ledger();
  std::vector<sim::NodeTraffic> traffic = messages.per_node();
  if (!traffic.empty()) {
    std::printf("message fan-in per node (kind totals: ");
    std::vector<std::uint64_t> kinds = messages.by_kind();
    for (std::size_t k = 0; k < kinds.size(); ++k)
      std::printf("%s%s=%llu", k ? ", " : "",
                  sim::message_kind_name(static_cast<sim::MessageKind>(k)),
                  static_cast<unsigned long long>(kinds[k]));
    std::printf("):\n");
    for (std::size_t n = 0; n < traffic.size(); ++n)
      std::printf("  node %zu: sent %llu (%llu B), recv %llu (%llu B)\n", n,
                  static_cast<unsigned long long>(traffic[n].sent),
                  static_cast<unsigned long long>(traffic[n].sent_bytes),
                  static_cast<unsigned long long>(traffic[n].recv),
                  static_cast<unsigned long long>(traffic[n].recv_bytes));
  }

  {
    const RunStats st = rt.finish();
    const obs::ProfileReport prof = rt.profiler().report(
        static_cast<std::uint64_t>(st.analysis_wall_s * 1e9));
    std::printf("analysis executor: %u thread%s, %llu shard groups "
                "(%llu tasks)",
                std::max(1u, threads), threads > 1 ? "s" : "",
                static_cast<unsigned long long>(prof.groups),
                static_cast<unsigned long long>(prof.group_tasks));
    if (rt.profiler().enabled())
      std::printf("; serial fraction %.2f (Amdahl max %.1fx)",
                  prof.serial_fraction, prof.amdahl_max_speedup);
    std::printf("\n");
  }

  if (!trace_out.empty()) maybe_export_trace(rt, trace_out);

  if (!metrics_json.empty()) {
    // Deterministic schema-v2 run object: only launch-clock quantities, no
    // wall-clock or host state, so the file is bit-identical across
    // --threads values -- except the "executor" section, which reports how
    // this host actually executed the analysis (thread count, shard
    // groups, measured serial fraction) and is stripped by golden
    // comparisons (see .github/workflows/ci.yml).
    std::string stem = std::filesystem::path(prog).stem().string();
    std::ostringstream run;
    run << "{\"name\":\"inspect/" << obs::json_escape(stem)
        << "\",\"app\":\"" << obs::json_escape(stem) << "\",\"algorithm\":\""
        << algorithm_name(engine) << "\",\"dcr\":"
        << (spec.dcr ? "true" : "false") << ",\"nodes\":" << spec.num_nodes
        << ",\"launches\":" << rt.dep_graph().task_count()
        << ",\"dep_edges\":" << rt.dep_graph().edge_count()
        << ",\"provenance\":{\"enabled\":"
        << (obs::kProvenanceEnabled ? "true" : "false")
        << ",\"edges_annotated\":" << rt.dep_graph().provenance_count()
        << "},\"executor\":" << executor_metrics_json(rt, threads)
        << ",\"lifecycle\":" << ledger.json()
        << ",\"messages\":" << messages.json() << ",\"eqset_series\":{";
    bool first_field = true;
    for (FieldID field : ledger.fields()) {
      if (!first_field) run << ",";
      first_field = false;
      run << "\"" << field << "\":[";
      std::vector<std::pair<LaunchID, std::uint64_t>> series =
          population_series(ledger, field);
      for (std::size_t i = 0; i < series.size(); ++i) {
        if (i) run << ",";
        run << "[";
        if (series[i].first == kInvalidLaunch) run << -1;
        else run << series[i].first;
        run << "," << series[i].second << "]";
      }
      run << "]";
    }
    run << "}}";
    MetricsFile metrics("visrt_cli");
    metrics.add_run(run.str());
    if (metrics.write(metrics_json))
      std::printf("metrics written to %s\n", metrics_json.c_str());
  }
  return 0;
}

// --- scaling profile (`visrt_cli profile`) ---------------------------------

/// The host-execution section of the inspect metrics JSON.  Unlike the
/// rest of the run object this is *not* thread-count invariant.
std::string executor_metrics_json(Runtime& rt, unsigned threads) {
  const RunStats st = rt.finish();
  const obs::ProfileReport prof = rt.profiler().report(
      static_cast<std::uint64_t>(st.analysis_wall_s * 1e9));
  std::ostringstream os;
  os << "{\"threads\":" << std::max(1u, threads)
     << ",\"profile_enabled\":"
     << (rt.profiler().enabled() ? "true" : "false")
     << ",\"shard_groups\":" << prof.groups
     << ",\"shard_tasks\":" << prof.group_tasks
     << ",\"serial_fraction\":" << obs::json_number(prof.serial_fraction)
     << ",\"amdahl_max_speedup\":"
     << obs::json_number(prof.amdahl_max_speedup) << "}";
  return os.str();
}

/// One measured run of the profile sweep.
struct ProfiledRun {
  unsigned threads = 1;
  double wall_s = 0;
  std::size_t launches = 0;
  std::size_t dep_edges = 0;
  std::string structure; ///< thread-count-invariant JSON
  std::string timing;    ///< host/thread-dependent JSON
  obs::ProfileReport report;
};

/// Capture the profile of a finished runtime.
ProfiledRun capture_profile(Runtime& rt, unsigned threads) {
  ProfiledRun out;
  out.threads = std::max(1u, threads);
  const RunStats st = rt.finish();
  out.wall_s = st.analysis_wall_s;
  out.launches = st.launches;
  out.dep_edges = st.dep_edges;
  const auto wall_ns = static_cast<std::uint64_t>(st.analysis_wall_s * 1e9);
  out.report = rt.profiler().report(wall_ns);
  out.structure = rt.profiler().structure_json();
  out.timing = rt.profiler().timing_json(wall_ns, out.threads);
  return out;
}

int run_profile(std::vector<std::string> args) {
  std::string target, json_path, trace_out;
  std::optional<Algorithm> engine_override;
  bool dcr = false;
  std::uint32_t nodes = 16;
  int iters = 5;
  coord_t size = 0;
  std::size_t top = 5;
  std::size_t shard_batch = 0;
  std::vector<unsigned> sweep;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--engine" && i + 1 < args.size()) {
      engine_override = parse_algorithm(args[++i]);
      if (!engine_override) {
        std::fprintf(stderr, "profile: unknown engine '%s'\n",
                     args[i].c_str());
        return 2;
      }
    } else if (args[i] == "--dcr") {
      dcr = true;
    } else if (args[i] == "--nodes" && i + 1 < args.size()) {
      nodes = static_cast<std::uint32_t>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--iters" && i + 1 < args.size()) {
      iters = static_cast<int>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--size" && i + 1 < args.size()) {
      size = std::atol(args[++i].c_str());
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--shard-batch" && i + 1 < args.size()) {
      shard_batch = static_cast<std::size_t>(std::atol(args[++i].c_str()));
    } else if (args[i] == "--threads-sweep" && i + 1 < args.size()) {
      for (const char* p = args[++i].c_str(); *p != '\0';) {
        char* end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) sweep.push_back(static_cast<unsigned>(v));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (args[i] == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if ((args[i] == "--trace-out" || args[i] == "--chrome-trace") &&
               i + 1 < args.size()) {
      trace_out = args[++i];
    } else if (target.empty() && args[i][0] != '-') {
      target = args[i];
    } else {
      return usage();
    }
  }
  if (target.empty()) return usage();
  if (sweep.empty()) sweep.push_back(1);

  const bool is_app =
      target == "stencil" || target == "circuit" || target == "pennant";
  fuzz::ProgramSpec spec;
  if (!is_app && !load_spec(target, spec)) return 2;
  Algorithm engine = engine_override.value_or(
      is_app ? Algorithm::RayCast : spec.subject);

  if (!obs::kProfileEnabled)
    std::printf("(profiler compiled out: -DVISRT_PROFILE=OFF; timings "
                "below are empty)\n");

  std::vector<ProfiledRun> runs;
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    const unsigned threads = sweep[r];
    std::unique_ptr<Runtime> owned;
    if (is_app) {
      RuntimeConfig cfg;
      cfg.algorithm = engine;
      cfg.dcr = dcr;
      cfg.track_values = false; // analysis-only, like the scaling benches
      cfg.profile = true;
      cfg.analysis_threads = threads;
      cfg.shard_batch = shard_batch;
      cfg.machine.num_nodes = nodes;
      owned = std::make_unique<Runtime>(cfg);
      if (target == "circuit") {
        // The fig13 weak-scaling shape (one piece per simulated node).
        apps::CircuitConfig acfg;
        acfg.pieces = nodes;
        acfg.nodes_per_piece = size > 0 ? static_cast<std::uint32_t>(size)
                                        : 200;
        acfg.wires_per_piece = acfg.nodes_per_piece * 3 / 2;
        acfg.cross_fraction = 0.15;
        acfg.iterations = iters;
        apps::CircuitApp app(*owned, acfg);
        app.run();
      } else if (target == "stencil") {
        apps::StencilConfig acfg;
        std::uint32_t px = 1;
        while (px * px < nodes) px *= 2;
        acfg.pieces_x = px;
        acfg.pieces_y = std::max<std::uint32_t>(1, nodes / px);
        acfg.tile_rows = acfg.tile_cols = size > 0 ? size : 128;
        acfg.iterations = iters;
        apps::StencilApp app(*owned, acfg);
        app.run();
      } else {
        apps::PennantConfig acfg;
        std::uint32_t px = 1;
        while (px * px < nodes) px *= 2;
        acfg.pieces_x = px;
        acfg.pieces_y = std::max<std::uint32_t>(1, nodes / px);
        acfg.zones_per_piece_x = acfg.zones_per_piece_y =
            size > 0 ? static_cast<std::uint32_t>(size) : 32;
        acfg.iterations = iters;
        apps::PennantApp app(*owned, acfg);
        app.run();
      }
    } else {
      fuzz::LiveRunOptions options;
      options.provenance = false;
      options.profile = true;
      options.analysis_threads = threads;
      options.shard_batch = shard_batch;
      options.subject = engine_override;
      fuzz::LiveRun live = fuzz::run_program_live(spec, options);
      if (live.runtime == nullptr) {
        std::fprintf(stderr, "profile: run crashed: %s\n",
                     live.result.crash_message.c_str());
        return 1;
      }
      owned = std::move(live.runtime);
    }
    runs.push_back(capture_profile(*owned, threads));
    if (r + 1 == sweep.size() && !trace_out.empty()) {
      std::ofstream out(trace_out);
      owned->export_profile_trace(out);
      std::printf("profile timeline written to %s\n", trace_out.c_str());
    }
  }

  // The determinism contract: phase labels and event counts must not
  // depend on the thread count.
  for (std::size_t r = 1; r < runs.size(); ++r) {
    if (runs[r].structure != runs[0].structure ||
        runs[r].launches != runs[0].launches ||
        runs[r].dep_edges != runs[0].dep_edges) {
      std::fprintf(stderr,
                   "profile: structure diverged between threads=%u and "
                   "threads=%u\n  t%u: %s\n  t%u: %s\n",
                   runs[0].threads, runs[r].threads, runs[0].threads,
                   runs[0].structure.c_str(), runs[r].threads,
                   runs[r].structure.c_str());
      return 1;
    }
  }

  std::printf("== profile: %s on %s%s, %u simulated nodes, %zu launches, "
              "%zu dependence edges ==\n",
              target.c_str(), algorithm_name(engine), dcr ? " +DCR" : "",
              nodes, runs[0].launches, runs[0].dep_edges);
  for (const ProfiledRun& run : runs) {
    std::printf("threads %u: analysis wall %.4f s", run.threads, run.wall_s);
    if (obs::kProfileEnabled)
      std::printf("  coverage %.1f%%  serial fraction %.2f  "
                  "Amdahl max %.2fx  critical path %.4f s",
                  run.report.coverage * 100.0, run.report.serial_fraction,
                  run.report.amdahl_max_speedup,
                  static_cast<double>(run.report.critical_path_ns) * 1e-9);
    std::printf("\n");
  }

  const ProfiledRun& base = runs.front();
  const ProfiledRun& last = runs.back();
  if (obs::kProfileEnabled && !base.report.phases.empty()) {
    std::printf("per-phase wall seconds (speedup vs threads=%u):\n",
                base.threads);
    std::printf("  %-11s %-28s %8s", "kind", "label", "events");
    for (const ProfiledRun& run : runs) {
      char hdr[16];
      std::snprintf(hdr, sizeof hdr, "t=%u", run.threads);
      std::printf(" %9s", hdr);
    }
    if (runs.size() > 1) std::printf(" %8s", "speedup");
    std::printf("\n");
    for (std::size_t i = 0; i < base.report.phases.size(); ++i) {
      const obs::PhaseTotal& p = base.report.phases[i];
      std::printf("  %-11s %-28s %8llu", phase_kind_name(p.kind),
                  p.label.c_str(),
                  static_cast<unsigned long long>(p.events));
      for (const ProfiledRun& run : runs)
        std::printf(" %9.4f",
                    static_cast<double>(run.report.phases[i].wall_ns) * 1e-9);
      if (runs.size() > 1) {
        const std::uint64_t w = last.report.phases[i].wall_ns;
        if (w > 0)
          std::printf(" %7.2fx", static_cast<double>(p.wall_ns) /
                                     static_cast<double>(w));
      }
      std::printf("\n");
    }
    std::printf("  %-11s %-28s %8s", "", "(unattributed)", "");
    for (const ProfiledRun& run : runs)
      std::printf(" %9.4f",
                  static_cast<double>(run.report.unattributed_ns) * 1e-9);
    std::printf("\n");
    if (runs.size() > 1 && last.wall_s > 0)
      std::printf("total analysis wall speedup (t=%u -> t=%u): %.2fx\n",
                  base.threads, last.threads, base.wall_s / last.wall_s);

    // Serialization sources: everything that cannot spread across the
    // executor -- the canonical-order merges, provenance recording, other
    // sequential phases -- plus measured lock waits, by time at the
    // highest thread count.
    struct Source {
      std::string kind, label;
      std::uint64_t ns = 0;
      std::string note;
    };
    std::vector<Source> sources;
    for (const obs::PhaseTotal& p : last.report.phases) {
      if (p.kind == obs::PhaseKind::ShardScan) continue;
      sources.push_back({phase_kind_name(p.kind), p.label, p.wall_ns, ""});
    }
    for (const auto& [name, st] : last.report.locks) {
      if (st.wait_total_ns == 0) continue;
      char note[96];
      std::snprintf(note, sizeof note, " (%llu/%llu acquisitions contended)",
                    static_cast<unsigned long long>(st.contended),
                    static_cast<unsigned long long>(st.acquisitions));
      sources.push_back({"lock", name, st.wait_total_ns, note});
    }
    std::sort(sources.begin(), sources.end(),
              [](const Source& a, const Source& b) { return a.ns > b.ns; });
    if (sources.size() > top) sources.resize(top);
    std::printf("top serialization sources at threads=%u:\n", last.threads);
    for (std::size_t i = 0; i < sources.size(); ++i)
      std::printf("  %zu. %-10s %-28s %.4f s  %.1f%% of wall%s\n", i + 1,
                  sources[i].kind.c_str(), sources[i].label.c_str(),
                  static_cast<double>(sources[i].ns) * 1e-9,
                  last.report.wall_ns > 0
                      ? 100.0 * static_cast<double>(sources[i].ns) /
                            static_cast<double>(last.report.wall_ns)
                      : 0.0,
                  sources[i].note.c_str());
    for (const auto& [name, st] : last.report.locks)
      std::printf("lock %-24s %llu acquisitions, %llu contended, "
                  "wait %.3f ms total / %.1f us max\n",
                  name.c_str(),
                  static_cast<unsigned long long>(st.acquisitions),
                  static_cast<unsigned long long>(st.contended),
                  static_cast<double>(st.wait_total_ns) * 1e-6,
                  static_cast<double>(st.wait_max_ns) * 1e-3);
  }

  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\"schema_version\":1,\"enabled\":"
       << (obs::kProfileEnabled ? "true" : "false") << ",\"target\":\""
       << obs::json_escape(target) << "\",\"engine\":\""
       << algorithm_name(engine) << "\",\"dcr\":" << (dcr ? "true" : "false")
       << ",\"nodes\":" << nodes << ",\"launches\":" << runs[0].launches
       << ",\"dep_edges\":" << runs[0].dep_edges
       << ",\"structure\":" << runs[0].structure << ",\"runs\":[";
    for (std::size_t r = 0; r < runs.size(); ++r) {
      js << (r ? "," : "") << "{\"threads\":" << runs[r].threads
         << ",\"analysis_wall_s\":" << obs::json_number(runs[r].wall_s)
         << ",\"timing\":" << runs[r].timing << "}";
    }
    js << "],\"serialization_sources\":[";
    std::vector<const obs::PhaseTotal*> serial;
    for (const obs::PhaseTotal& p : last.report.phases)
      if (p.kind != obs::PhaseKind::ShardScan) serial.push_back(&p);
    std::sort(serial.begin(), serial.end(),
              [](const obs::PhaseTotal* a, const obs::PhaseTotal* b) {
                return a->wall_ns > b->wall_ns;
              });
    if (serial.size() > top) serial.resize(top);
    for (std::size_t i = 0; i < serial.size(); ++i)
      js << (i ? "," : "") << "{\"kind\":\""
         << phase_kind_name(serial[i]->kind) << "\",\"label\":\""
         << obs::json_escape(serial[i]->label)
         << "\",\"wall_ns\":" << serial[i]->wall_ns << "}";
    js << "]}";
    std::ofstream out(json_path);
    out << js.str() << "\n";
    if (out) std::printf("profile report written to %s\n", json_path.c_str());
  }
  return 0;
}

void maybe_export_trace(const Runtime& rt, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  rt.export_chrome_trace(out);
  std::printf("timeline written to %s\n", path.c_str());
}

void print_stats(const Runtime& rt, const RunStats& stats, bool validated,
                 bool values) {
  std::printf("launches           %zu\n", stats.launches);
  std::printf("dependence edges   %zu\n", stats.dep_edges);
  std::printf("critical path      %zu tasks\n", stats.critical_path);
  std::printf("traced launches    %zu\n", rt.traced_launches());
  std::printf("messages           %zu (%.1f KiB)\n", stats.messages,
              static_cast<double>(stats.message_bytes) / 1024.0);
  std::printf("analysis cpu       %.3f ms (all nodes)\n",
              stats.analysis_cpu_s * 1e3);
  std::printf("eqsets live/total  %zu/%zu\n", stats.engine.live_eqsets,
              stats.engine.total_eqsets_created);
  std::printf("composite views    %zu/%zu\n",
              stats.engine.live_composite_views,
              stats.engine.total_composite_views);
  std::printf("init time          %.3f ms\n", stats.init_time_s * 1e3);
  std::printf("steady iteration   %.3f ms\n", stats.steady_iter_s * 1e3);
  std::printf("total time         %.3f ms\n", stats.total_time_s * 1e3);
  if (values) {
    std::printf("validation         %s\n", validated ? "PASS" : "FAIL");
  }
}

/// Finish the run: optional spy verification, stats to stdout, then the
/// optional timeline and metrics files.  Returns false when --verify found
/// a violation.
bool report(Runtime& rt, const Options& opt, bool validated) {
  bool spy_ok = true;
  if (opt.verify) {
    analysis::SpyReport spy = analysis::verify(rt);
    std::printf("spy verify         %s\n", spy.summary().c_str());
    print_violations(spy);
    spy_ok = spy.clean();
  }
  RunStats stats = rt.finish();
  print_stats(rt, stats, validated, opt.values);
  maybe_export_trace(rt, opt.chrome_trace);
  if (!opt.metrics_json.empty()) {
    MetricsRunInfo info;
    info.name = opt.app + "/" + algorithm_name(opt.algorithm);
    info.app = opt.app;
    info.algorithm = algorithm_name(opt.algorithm);
    info.dcr = opt.dcr;
    info.nodes = opt.nodes;
    MetricsFile metrics("visrt_cli");
    metrics.add_run(metrics_run_json(info, rt, stats));
    if (metrics.write(opt.metrics_json))
      std::printf("metrics written to %s\n", opt.metrics_json.c_str());
  }
  return spy_ok;
}

// --- streaming analysis daemon (`visrt_cli serve`) -------------------------

serve::Server* g_serve_instance = nullptr;

void serve_signal_handler(int) {
  if (g_serve_instance != nullptr) g_serve_instance->request_stop();
}

int run_serve(std::vector<std::string> args) {
  std::string socket_path;
  bool use_stdin = false;
  std::string metrics_path;
  std::string flight_dump_dir = ".";
  int sampler_interval_ms = 1000;
  serve::SessionOptions session;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> long {
      return ++i < args.size() ? std::atol(args[i].c_str()) : 0;
    };
    if (arg == "--socket" && i + 1 < args.size()) {
      socket_path = args[++i];
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--engine" && i + 1 < args.size()) {
      auto engine = parse_algorithm(args[++i]);
      if (!engine) {
        std::fprintf(stderr, "serve: unknown engine '%s'\n", args[i].c_str());
        return 2;
      }
      session.subject = *engine;
    } else if (arg == "--threads") {
      session.analysis_threads = static_cast<unsigned>(next());
    } else if (arg == "--shard-batch") {
      session.shard_batch = static_cast<std::size_t>(next());
    } else if (arg == "--max-resident-launches") {
      session.max_resident_launches = static_cast<std::size_t>(next());
    } else if (arg == "--max-history-depth") {
      session.max_history_depth = static_cast<std::size_t>(next());
    } else if (arg == "--retire-interval") {
      session.retire_every = static_cast<std::size_t>(next());
    } else if (arg == "--no-values") {
      session.track_values = false;
    } else if (arg == "--verify") {
      session.verify = true;
    } else if (arg == "--metrics-json" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (arg == "--flight-dump-dir" && i + 1 < args.size()) {
      flight_dump_dir = args[++i];
    } else if (arg == "--sampler-interval-ms") {
      sampler_interval_ms = static_cast<int>(next());
    } else if (arg == "--inject-check-failure") {
      // Test hook (CI crash-dump smoke): trip an invariant after N
      // ingested launches so the flight recorder's dump path runs.
      session.inject_check_failure_after = static_cast<std::uint64_t>(next());
    } else {
      std::fprintf(stderr, "serve: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty() && !use_stdin) {
    std::fprintf(stderr,
                 "serve: need --socket PATH or --stdin (see docs/SERVING.md)\n");
    return 2;
  }

  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.session = session;
  options.sampler_interval_ms = sampler_interval_ms;
  serve::Server server(options);
  // Always-on crash forensics: any invariant failure or fatal signal in
  // the daemon leaves a flight-recorder dump behind (docs/SERVING.md).
  obs::flight_arm_crash_dumps(flight_dump_dir);

  if (use_stdin) {
    server.run_stream(std::cin, std::cout);
  } else {
    try {
      server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: %s\n", e.what());
      return 1;
    }
    g_serve_instance = &server;
    std::signal(SIGTERM, serve_signal_handler);
    std::signal(SIGINT, serve_signal_handler);
    std::fprintf(stderr, "serve: listening on %s\n", socket_path.c_str());
    while (!server.stopping())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::fprintf(stderr, "serve: draining in-flight sessions\n");
    server.stop(); // graceful: every session finishes and replies
    g_serve_instance = nullptr;
  }

  serve::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "serve: done — %llu sessions (%llu failed), %llu launches, "
               "%llu retired, peak resident %llu\n",
               static_cast<unsigned long long>(stats.sessions_total),
               static_cast<unsigned long long>(stats.sessions_failed),
               static_cast<unsigned long long>(stats.totals.launches),
               static_cast<unsigned long long>(stats.totals.retired_launches),
               static_cast<unsigned long long>(
                   stats.totals.peak_resident_launches));
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    os << server.metrics_json() << "\n";
    std::fprintf(stderr, "serve: metrics written to %s\n",
                 metrics_path.c_str());
  }
  return stats.sessions_failed == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  // --log-json applies to every command form; strip it before dispatch.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--log-json") == 0)
      set_log_format(LogFormat::Json);
    else
      args.emplace_back(argv[i]);
  }
  if (!args.empty() && args[0] == "verify")
    return run_verify({args.begin() + 1, args.end()});
  if (!args.empty() && args[0] == "explain")
    return run_explain({args.begin() + 1, args.end()});
  if (!args.empty() && args[0] == "inspect")
    return run_inspect({args.begin() + 1, args.end()});
  if (!args.empty() && args[0] == "profile")
    return run_profile({args.begin() + 1, args.end()});
  if (!args.empty() && args[0] == "serve")
    return run_serve({args.begin() + 1, args.end()});
  if (args.size() < 2) return usage();
  Options opt;
  opt.app = args[0];
  auto algorithm = parse_algorithm(args[1]);
  if (!algorithm) return usage();
  opt.algorithm = *algorithm;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> long {
      return ++i < args.size() ? std::atol(args[i].c_str()) : 0;
    };
    if (arg == "--nodes") opt.nodes = static_cast<std::uint32_t>(next());
    else if (arg == "--pieces") opt.pieces = static_cast<std::uint32_t>(next());
    else if (arg == "--iters") opt.iters = static_cast<int>(next());
    else if (arg == "--dcr") opt.dcr = true;
    else if (arg == "--trace") opt.trace = true;
    else if (arg == "--no-values") opt.values = false;
    else if (arg == "--verify") opt.verify = true;
    else if (arg == "--size") opt.size = next();
    else if ((arg == "--chrome-trace" || arg == "--trace-out") &&
             i + 1 < args.size())
      opt.chrome_trace = args[++i];
    else if (arg == "--metrics-json" && i + 1 < args.size())
      opt.metrics_json = args[++i];
    else return usage();
  }
  if (opt.pieces == 0) opt.pieces = opt.nodes;

  RuntimeConfig cfg;
  cfg.algorithm = opt.algorithm;
  cfg.dcr = opt.dcr;
  cfg.track_values = opt.values;
  // Any observability output wants the full telemetry: spans, series and
  // the enriched timeline.
  cfg.telemetry = !opt.chrome_trace.empty() || !opt.metrics_json.empty();
  cfg.record_launches = opt.verify; // the spy verifier reads the launch log
  cfg.machine.num_nodes = opt.nodes;
  Runtime rt(cfg);

  std::printf("== visrt: %s on %s%s%s, %u pieces, %u simulated nodes ==\n",
              opt.app.c_str(), algorithm_name(opt.algorithm),
              opt.dcr ? " +DCR" : "", opt.trace ? " +tracing" : "",
              opt.pieces, opt.nodes);

  bool validated = false;
  bool spy_ok = true;
  if (opt.app == "stencil") {
    apps::StencilConfig acfg;
    std::uint32_t px = 1;
    while (px * px < opt.pieces) px *= 2;
    acfg.pieces_x = px;
    acfg.pieces_y = std::max<std::uint32_t>(1, opt.pieces / px);
    acfg.tile_rows = acfg.tile_cols = opt.size > 0 ? opt.size : 16;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::StencilApp app(rt, acfg);
    app.run();
    if (opt.values) validated = app.validate();
    spy_ok = report(rt, opt, validated);
  } else if (opt.app == "circuit") {
    apps::CircuitConfig acfg;
    acfg.pieces = opt.pieces;
    acfg.nodes_per_piece = opt.size > 0 ? opt.size : 24;
    acfg.wires_per_piece = 2 * acfg.nodes_per_piece;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::CircuitApp app(rt, acfg);
    app.run();
    if (opt.values)
      validated = app.validate(opt.algorithm == Algorithm::Paint ? 1e-9 : 0);
    spy_ok = report(rt, opt, validated);
  } else if (opt.app == "pennant") {
    apps::PennantConfig acfg;
    std::uint32_t px = 1;
    while (px * px < opt.pieces) px *= 2;
    acfg.pieces_x = px;
    acfg.pieces_y = std::max<std::uint32_t>(1, opt.pieces / px);
    acfg.zones_per_piece_x = acfg.zones_per_piece_y =
        opt.size > 0 ? opt.size : 8;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::PennantApp app(rt, acfg);
    app.run();
    if (opt.values)
      validated = app.validate(opt.algorithm == Algorithm::Paint ? 1e-9 : 0);
    spy_ok = report(rt, opt, validated);
  } else {
    return usage();
  }
  return ((!opt.values || validated) && spy_ok) ? 0 : 1;
}
