// visrt_cli: run any benchmark application under any configuration from
// the command line and print the run statistics — a one-stop driver for
// poking at the system.
//
// Usage:
//   visrt_cli <app> <algorithm> [options]
//     app        stencil | circuit | pennant
//     algorithm  paint | warnock | raycast | naive-paint | naive-warnock |
//                naive-raycast | reference
//   options:
//     --nodes N        simulated machine size (default 4)
//     --pieces N       pieces (default = nodes; apps round to their grid)
//     --iters N        iterations (default 5)
//     --dcr            enable dynamic control replication
//     --trace          enable the tracing extension
//     --no-values      analysis-only mode (skip kernels and validation)
//     --size N         per-piece problem scale (default app-specific)
//     --verify         spy-verify the emitted dependence graph and DES
//                      schedule after the run (docs/ANALYSIS.md); the
//                      process exits nonzero on any violation
//     --trace-out F    write a chrome://tracing / Perfetto JSON timeline
//                      (with counter tracks + flow arrows) to file F
//                      (--chrome-trace is an alias)
//     --metrics-json F write the run's JSON metrics (schema in
//                      docs/OBSERVABILITY.md) to file F
//
//   visrt_cli verify <file-or-dir>... [options]
//     Static verification of .visprog programs: lints each program, then
//     executes it under every engine (or one, with --engine) with and
//     without DCR and spy-verifies the emitted dependence graph against
//     ground truth recomputed from geometry and privileges.  Exits
//     nonzero on any lint error, soundness or precision violation.
//     --engine NAME    verify one engine instead of all six
//     --json F         write a machine-readable report to file F
//
// Examples:
//   visrt_cli circuit warnock --nodes 64 --dcr --no-values
//   visrt_cli stencil raycast --trace --verify
//   visrt_cli verify tests/corpus --json verify.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/spy.h"
#include "apps/circuit.h"
#include "apps/pennant.h"
#include "apps/stencil.h"
#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "obs/metrics.h"
#include "runtime/metrics.h"

using namespace visrt;

namespace {

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  for (Algorithm a :
       {Algorithm::Paint, Algorithm::Warnock, Algorithm::RayCast,
        Algorithm::NaivePaint, Algorithm::NaiveWarnock,
        Algorithm::NaiveRayCast, Algorithm::Reference}) {
    if (name == algorithm_name(a)) return a;
  }
  return std::nullopt;
}

struct Options {
  std::string app;
  Algorithm algorithm = Algorithm::RayCast;
  std::uint32_t nodes = 4;
  std::uint32_t pieces = 0; // 0: use nodes
  int iters = 5;
  bool dcr = false;
  bool trace = false;
  bool values = true;
  bool verify = false;
  coord_t size = 0; // 0: app default
  std::string chrome_trace; // empty: no timeline export
  std::string metrics_json; // empty: no metrics file
};

int usage() {
  std::fprintf(stderr,
               "usage: visrt_cli <stencil|circuit|pennant> <algorithm> "
               "[--nodes N] [--pieces N] [--iters N] [--dcr] [--trace] "
               "[--no-values] [--size N] [--verify] [--trace-out F] "
               "[--metrics-json F]\n"
               "       visrt_cli verify <file-or-dir>... [--engine NAME] "
               "[--json F]\n");
  return 2;
}

// --- static verification (`visrt_cli verify`) ------------------------------

/// Print the retained violations of a spy report, indented.
void print_violations(const analysis::SpyReport& report) {
  for (const analysis::SpyViolation& v : report.violations)
    std::printf("    [%s] launches %u -> %u: %s\n",
                analysis::spy_violation_kind_name(v.kind),
                static_cast<unsigned>(v.earlier),
                static_cast<unsigned>(v.later), v.detail.c_str());
}

int run_verify(std::vector<std::string> args) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::optional<Algorithm> engine_filter;
  std::string json_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--engine" && i + 1 < args.size()) {
      engine_filter = parse_algorithm(args[++i]);
      if (!engine_filter) {
        std::fprintf(stderr, "verify: unknown engine '%s'\n",
                     args[i].c_str());
        return 2;
      }
    } else if (args[i] == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (fs::is_directory(args[i])) {
      for (const auto& entry : fs::directory_iterator(args[i]))
        if (entry.path().extension() == ".visprog")
          files.push_back(entry.path());
    } else if (fs::is_regular_file(args[i])) {
      files.push_back(args[i]);
    } else {
      std::fprintf(stderr, "verify: no such file or directory: %s\n",
                   args[i].c_str());
      return 2;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "verify: no .visprog programs found\n");
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::vector<Algorithm> engines;
  if (engine_filter) {
    engines.push_back(*engine_filter);
  } else {
    engines = {Algorithm::Paint,        Algorithm::Warnock,
               Algorithm::RayCast,      Algorithm::NaivePaint,
               Algorithm::NaiveWarnock, Algorithm::NaiveRayCast};
  }

  bool all_ok = true;
  std::ostringstream json;
  json << "{\"schema_version\":1,\"programs\":[";
  for (std::size_t f = 0; f < files.size(); ++f) {
    const fs::path& path = files[f];
    std::printf("== %s ==\n", path.c_str());
    json << (f ? "," : "") << "{\"file\":\"" << obs::json_escape(path.string())
         << "\"";

    fuzz::ProgramSpec spec;
    try {
      std::ifstream is(path);
      spec = fuzz::read_visprog(is);
    } catch (const std::exception& e) {
      std::printf("  parse error: %s\n", e.what());
      json << ",\"parse_error\":\"" << obs::json_escape(e.what()) << "\"}";
      all_ok = false;
      continue;
    }

    fuzz::BuiltForest built;
    fuzz::build_forest(spec, built);
    analysis::LintReport lint_report =
        analysis::lint(built.forest, fuzz::lint_events(spec, built));
    std::printf("  %s\n", lint_report.summary().c_str());
    for (const analysis::LintFinding& finding : lint_report.findings)
      std::printf("    [%s %s] %s\n", analysis::lint_rule_id(finding.rule),
                  finding.severity == analysis::LintSeverity::Error
                      ? "error"
                      : "warning",
                  finding.message.c_str());
    if (!lint_report.ok()) all_ok = false;
    json << ",\"lint\":" << lint_report.to_json() << ",\"runs\":[";

    bool first_run = true;
    for (Algorithm engine : engines) {
      for (bool dcr : {false, true}) {
        fuzz::ProgramSpec variant = spec;
        variant.subject = engine;
        variant.dcr = dcr;
        fuzz::SpyCheckResult result = fuzz::spy_check(variant);
        std::printf("  %-14s%s  ", algorithm_name(engine),
                    dcr ? "+dcr" : "    ");
        json << (first_run ? "" : ",") << "{\"engine\":\""
             << algorithm_name(engine) << "\",\"dcr\":" << (dcr ? 1 : 0);
        first_run = false;
        if (result.crashed) {
          std::printf("CRASH: %s\n", result.crash_message.c_str());
          json << ",\"crashed\":true,\"message\":\""
               << obs::json_escape(result.crash_message) << "\"}";
          all_ok = false;
          continue;
        }
        std::printf("%s\n", result.report.summary().c_str());
        print_violations(result.report);
        json << ",\"crashed\":false,\"report\":" << result.report.to_json()
             << "}";
        if (!result.report.clean()) all_ok = false;
      }
    }
    json << "]}";
  }
  json << "],\"ok\":" << (all_ok ? "true" : "false") << "}";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str() << "\n";
    if (out) std::printf("report written to %s\n", json_path.c_str());
  }
  std::printf("verify: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}

void maybe_export_trace(const Runtime& rt, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  rt.export_chrome_trace(out);
  std::printf("timeline written to %s\n", path.c_str());
}

void print_stats(const Runtime& rt, const RunStats& stats, bool validated,
                 bool values) {
  std::printf("launches           %zu\n", stats.launches);
  std::printf("dependence edges   %zu\n", stats.dep_edges);
  std::printf("critical path      %zu tasks\n", stats.critical_path);
  std::printf("traced launches    %zu\n", rt.traced_launches());
  std::printf("messages           %zu (%.1f KiB)\n", stats.messages,
              static_cast<double>(stats.message_bytes) / 1024.0);
  std::printf("analysis cpu       %.3f ms (all nodes)\n",
              stats.analysis_cpu_s * 1e3);
  std::printf("eqsets live/total  %zu/%zu\n", stats.engine.live_eqsets,
              stats.engine.total_eqsets_created);
  std::printf("composite views    %zu/%zu\n",
              stats.engine.live_composite_views,
              stats.engine.total_composite_views);
  std::printf("init time          %.3f ms\n", stats.init_time_s * 1e3);
  std::printf("steady iteration   %.3f ms\n", stats.steady_iter_s * 1e3);
  std::printf("total time         %.3f ms\n", stats.total_time_s * 1e3);
  if (values) {
    std::printf("validation         %s\n", validated ? "PASS" : "FAIL");
  }
}

/// Finish the run: optional spy verification, stats to stdout, then the
/// optional timeline and metrics files.  Returns false when --verify found
/// a violation.
bool report(Runtime& rt, const Options& opt, bool validated) {
  bool spy_ok = true;
  if (opt.verify) {
    analysis::SpyReport spy = analysis::verify(rt);
    std::printf("spy verify         %s\n", spy.summary().c_str());
    print_violations(spy);
    spy_ok = spy.clean();
  }
  RunStats stats = rt.finish();
  print_stats(rt, stats, validated, opt.values);
  maybe_export_trace(rt, opt.chrome_trace);
  if (!opt.metrics_json.empty()) {
    MetricsRunInfo info;
    info.name = opt.app + "/" + algorithm_name(opt.algorithm);
    info.app = opt.app;
    info.algorithm = algorithm_name(opt.algorithm);
    info.dcr = opt.dcr;
    info.nodes = opt.nodes;
    MetricsFile metrics("visrt_cli");
    metrics.add_run(metrics_run_json(info, rt, stats));
    if (metrics.write(opt.metrics_json))
      std::printf("metrics written to %s\n", opt.metrics_json.c_str());
  }
  return spy_ok;
}

} // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "verify") == 0)
    return run_verify(std::vector<std::string>(argv + 2, argv + argc));
  if (argc < 3) return usage();
  Options opt;
  opt.app = argv[1];
  auto algorithm = parse_algorithm(argv[2]);
  if (!algorithm) return usage();
  opt.algorithm = *algorithm;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> long {
      return ++i < argc ? std::atol(argv[i]) : 0;
    };
    if (arg == "--nodes") opt.nodes = static_cast<std::uint32_t>(next());
    else if (arg == "--pieces") opt.pieces = static_cast<std::uint32_t>(next());
    else if (arg == "--iters") opt.iters = static_cast<int>(next());
    else if (arg == "--dcr") opt.dcr = true;
    else if (arg == "--trace") opt.trace = true;
    else if (arg == "--no-values") opt.values = false;
    else if (arg == "--verify") opt.verify = true;
    else if (arg == "--size") opt.size = next();
    else if ((arg == "--chrome-trace" || arg == "--trace-out") &&
             i + 1 < argc)
      opt.chrome_trace = argv[++i];
    else if (arg == "--metrics-json" && i + 1 < argc)
      opt.metrics_json = argv[++i];
    else return usage();
  }
  if (opt.pieces == 0) opt.pieces = opt.nodes;

  RuntimeConfig cfg;
  cfg.algorithm = opt.algorithm;
  cfg.dcr = opt.dcr;
  cfg.track_values = opt.values;
  // Any observability output wants the full telemetry: spans, series and
  // the enriched timeline.
  cfg.telemetry = !opt.chrome_trace.empty() || !opt.metrics_json.empty();
  cfg.record_launches = opt.verify; // the spy verifier reads the launch log
  cfg.machine.num_nodes = opt.nodes;
  Runtime rt(cfg);

  std::printf("== visrt: %s on %s%s%s, %u pieces, %u simulated nodes ==\n",
              opt.app.c_str(), algorithm_name(opt.algorithm),
              opt.dcr ? " +DCR" : "", opt.trace ? " +tracing" : "",
              opt.pieces, opt.nodes);

  bool validated = false;
  bool spy_ok = true;
  if (opt.app == "stencil") {
    apps::StencilConfig acfg;
    std::uint32_t px = 1;
    while (px * px < opt.pieces) px *= 2;
    acfg.pieces_x = px;
    acfg.pieces_y = std::max<std::uint32_t>(1, opt.pieces / px);
    acfg.tile_rows = acfg.tile_cols = opt.size > 0 ? opt.size : 16;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::StencilApp app(rt, acfg);
    app.run();
    if (opt.values) validated = app.validate();
    spy_ok = report(rt, opt, validated);
  } else if (opt.app == "circuit") {
    apps::CircuitConfig acfg;
    acfg.pieces = opt.pieces;
    acfg.nodes_per_piece = opt.size > 0 ? opt.size : 24;
    acfg.wires_per_piece = 2 * acfg.nodes_per_piece;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::CircuitApp app(rt, acfg);
    app.run();
    if (opt.values)
      validated = app.validate(opt.algorithm == Algorithm::Paint ? 1e-9 : 0);
    spy_ok = report(rt, opt, validated);
  } else if (opt.app == "pennant") {
    apps::PennantConfig acfg;
    std::uint32_t px = 1;
    while (px * px < opt.pieces) px *= 2;
    acfg.pieces_x = px;
    acfg.pieces_y = std::max<std::uint32_t>(1, opt.pieces / px);
    acfg.zones_per_piece_x = acfg.zones_per_piece_y =
        opt.size > 0 ? opt.size : 8;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::PennantApp app(rt, acfg);
    app.run();
    if (opt.values)
      validated = app.validate(opt.algorithm == Algorithm::Paint ? 1e-9 : 0);
    spy_ok = report(rt, opt, validated);
  } else {
    return usage();
  }
  return ((!opt.values || validated) && spy_ok) ? 0 : 1;
}
