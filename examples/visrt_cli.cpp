// visrt_cli: run any benchmark application under any configuration from
// the command line and print the run statistics — a one-stop driver for
// poking at the system.
//
// Usage:
//   visrt_cli <app> <algorithm> [options]
//     app        stencil | circuit | pennant
//     algorithm  paint | warnock | raycast | naive-paint | naive-warnock |
//                naive-raycast | reference
//   options:
//     --nodes N        simulated machine size (default 4)
//     --pieces N       pieces (default = nodes; apps round to their grid)
//     --iters N        iterations (default 5)
//     --dcr            enable dynamic control replication
//     --trace          enable the tracing extension
//     --no-values      analysis-only mode (skip kernels and validation)
//     --size N         per-piece problem scale (default app-specific)
//     --trace-out F    write a chrome://tracing / Perfetto JSON timeline
//                      (with counter tracks + flow arrows) to file F
//                      (--chrome-trace is an alias)
//     --metrics-json F write the run's JSON metrics (schema in
//                      docs/OBSERVABILITY.md) to file F
//
// Examples:
//   visrt_cli circuit warnock --nodes 64 --dcr --no-values
//   visrt_cli stencil raycast --trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "apps/circuit.h"
#include "apps/pennant.h"
#include "apps/stencil.h"
#include "runtime/metrics.h"

using namespace visrt;

namespace {

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  for (Algorithm a :
       {Algorithm::Paint, Algorithm::Warnock, Algorithm::RayCast,
        Algorithm::NaivePaint, Algorithm::NaiveWarnock,
        Algorithm::NaiveRayCast, Algorithm::Reference}) {
    if (name == algorithm_name(a)) return a;
  }
  return std::nullopt;
}

struct Options {
  std::string app;
  Algorithm algorithm = Algorithm::RayCast;
  std::uint32_t nodes = 4;
  std::uint32_t pieces = 0; // 0: use nodes
  int iters = 5;
  bool dcr = false;
  bool trace = false;
  bool values = true;
  coord_t size = 0; // 0: app default
  std::string chrome_trace; // empty: no timeline export
  std::string metrics_json; // empty: no metrics file
};

int usage() {
  std::fprintf(stderr,
               "usage: visrt_cli <stencil|circuit|pennant> <algorithm> "
               "[--nodes N] [--pieces N] [--iters N] [--dcr] [--trace] "
               "[--no-values] [--size N] [--trace-out F] "
               "[--metrics-json F]\n");
  return 2;
}

void maybe_export_trace(const Runtime& rt, const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  rt.export_chrome_trace(out);
  std::printf("timeline written to %s\n", path.c_str());
}

void print_stats(const Runtime& rt, const RunStats& stats, bool validated,
                 bool values) {
  std::printf("launches           %zu\n", stats.launches);
  std::printf("dependence edges   %zu\n", stats.dep_edges);
  std::printf("critical path      %zu tasks\n", stats.critical_path);
  std::printf("traced launches    %zu\n", rt.traced_launches());
  std::printf("messages           %zu (%.1f KiB)\n", stats.messages,
              static_cast<double>(stats.message_bytes) / 1024.0);
  std::printf("analysis cpu       %.3f ms (all nodes)\n",
              stats.analysis_cpu_s * 1e3);
  std::printf("eqsets live/total  %zu/%zu\n", stats.engine.live_eqsets,
              stats.engine.total_eqsets_created);
  std::printf("composite views    %zu/%zu\n",
              stats.engine.live_composite_views,
              stats.engine.total_composite_views);
  std::printf("init time          %.3f ms\n", stats.init_time_s * 1e3);
  std::printf("steady iteration   %.3f ms\n", stats.steady_iter_s * 1e3);
  std::printf("total time         %.3f ms\n", stats.total_time_s * 1e3);
  if (values) {
    std::printf("validation         %s\n", validated ? "PASS" : "FAIL");
  }
}

/// Finish the run: stats to stdout, then the optional timeline and
/// metrics files.
void report(Runtime& rt, const Options& opt, bool validated) {
  RunStats stats = rt.finish();
  print_stats(rt, stats, validated, opt.values);
  maybe_export_trace(rt, opt.chrome_trace);
  if (!opt.metrics_json.empty()) {
    MetricsRunInfo info;
    info.name = opt.app + "/" + algorithm_name(opt.algorithm);
    info.app = opt.app;
    info.algorithm = algorithm_name(opt.algorithm);
    info.dcr = opt.dcr;
    info.nodes = opt.nodes;
    MetricsFile metrics("visrt_cli");
    metrics.add_run(metrics_run_json(info, rt, stats));
    if (metrics.write(opt.metrics_json))
      std::printf("metrics written to %s\n", opt.metrics_json.c_str());
  }
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  Options opt;
  opt.app = argv[1];
  auto algorithm = parse_algorithm(argv[2]);
  if (!algorithm) return usage();
  opt.algorithm = *algorithm;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> long {
      return ++i < argc ? std::atol(argv[i]) : 0;
    };
    if (arg == "--nodes") opt.nodes = static_cast<std::uint32_t>(next());
    else if (arg == "--pieces") opt.pieces = static_cast<std::uint32_t>(next());
    else if (arg == "--iters") opt.iters = static_cast<int>(next());
    else if (arg == "--dcr") opt.dcr = true;
    else if (arg == "--trace") opt.trace = true;
    else if (arg == "--no-values") opt.values = false;
    else if (arg == "--size") opt.size = next();
    else if ((arg == "--chrome-trace" || arg == "--trace-out") &&
             i + 1 < argc)
      opt.chrome_trace = argv[++i];
    else if (arg == "--metrics-json" && i + 1 < argc)
      opt.metrics_json = argv[++i];
    else return usage();
  }
  if (opt.pieces == 0) opt.pieces = opt.nodes;

  RuntimeConfig cfg;
  cfg.algorithm = opt.algorithm;
  cfg.dcr = opt.dcr;
  cfg.track_values = opt.values;
  // Any observability output wants the full telemetry: spans, series and
  // the enriched timeline.
  cfg.telemetry = !opt.chrome_trace.empty() || !opt.metrics_json.empty();
  cfg.machine.num_nodes = opt.nodes;
  Runtime rt(cfg);

  std::printf("== visrt: %s on %s%s%s, %u pieces, %u simulated nodes ==\n",
              opt.app.c_str(), algorithm_name(opt.algorithm),
              opt.dcr ? " +DCR" : "", opt.trace ? " +tracing" : "",
              opt.pieces, opt.nodes);

  bool validated = false;
  if (opt.app == "stencil") {
    apps::StencilConfig acfg;
    std::uint32_t px = 1;
    while (px * px < opt.pieces) px *= 2;
    acfg.pieces_x = px;
    acfg.pieces_y = std::max<std::uint32_t>(1, opt.pieces / px);
    acfg.tile_rows = acfg.tile_cols = opt.size > 0 ? opt.size : 16;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::StencilApp app(rt, acfg);
    app.run();
    if (opt.values) validated = app.validate();
    report(rt, opt, validated);
  } else if (opt.app == "circuit") {
    apps::CircuitConfig acfg;
    acfg.pieces = opt.pieces;
    acfg.nodes_per_piece = opt.size > 0 ? opt.size : 24;
    acfg.wires_per_piece = 2 * acfg.nodes_per_piece;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::CircuitApp app(rt, acfg);
    app.run();
    if (opt.values)
      validated = app.validate(opt.algorithm == Algorithm::Paint ? 1e-9 : 0);
    report(rt, opt, validated);
  } else if (opt.app == "pennant") {
    apps::PennantConfig acfg;
    std::uint32_t px = 1;
    while (px * px < opt.pieces) px *= 2;
    acfg.pieces_x = px;
    acfg.pieces_y = std::max<std::uint32_t>(1, opt.pieces / px);
    acfg.zones_per_piece_x = acfg.zones_per_piece_y =
        opt.size > 0 ? opt.size : 8;
    acfg.iterations = opt.iters;
    acfg.trace = opt.trace;
    apps::PennantApp app(rt, acfg);
    app.run();
    if (opt.values)
      validated = app.validate(opt.algorithm == Algorithm::Paint ? 1e-9 : 0);
    report(rt, opt, validated);
  } else {
    return usage();
  }
  return (!opt.values || validated) ? 0 : 1;
}
