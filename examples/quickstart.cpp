// quickstart: the paper's Figure 1 program, verbatim.
//
// A graph's nodes live in a region N with fields `up` and `down`.  A
// disjoint primary partition P and an aliased ghost partition G provide two
// views of the same data.  Tasks t1/t2 alternate read-writing their piece
// through P while reducing into neighbours through G; the runtime discovers
// all parallelism and keeps both views coherent.
//
// Run:  ./quickstart
#include <cstdio>

#include "realm/reduction_ops.h"
#include "runtime/runtime.h"

using namespace visrt;

namespace {

// A tiny ring-of-pieces graph: 3 pieces of 10 nodes; the ghost nodes of a
// piece are the two boundary nodes of each neighbouring piece, so G is
// aliased (a node can be ghost for both neighbours).
struct Graph {
  RegionHandle n;
  PartitionHandle p, g;
  FieldID up, down;
};

Graph build_graph(Runtime& rt) {
  Graph graph;
  graph.n = rt.create_region(IntervalSet(0, 29), "N");
  graph.p = rt.create_partition(
      graph.n, {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29)},
      "P");
  graph.g = rt.create_partition(
      graph.n,
      {IntervalSet{{10, 11}, {28, 29}},   // ghosts of piece 0
       IntervalSet{{8, 9}, {20, 21}},     // ghosts of piece 1
       IntervalSet{{18, 19}, {0, 1}}},    // ghosts of piece 2
      "G");
  graph.up = rt.add_field(graph.n, "up", 1.0);
  graph.down = rt.add_field(graph.n, "down", 1.0);
  return graph;
}

// task t1(p<Node>, g<Node>): read-write p.up, reduce::+ g.down
void launch_t1(Runtime& rt, const Graph& graph, std::size_t i) {
  TaskLaunch t;
  t.name = "t1";
  t.requirements = {
      RegionReq{rt.subregion(graph.p, i), graph.up,
                Privilege::read_write()},
      RegionReq{rt.subregion(graph.g, i), graph.down,
                Privilege::reduce(kRedopSum)}};
  t.mapped_node = static_cast<NodeID>(i % rt.num_nodes());
  t.work_items = 12;
  t.fn = [](TaskContext& ctx) {
    ctx.data(0).for_each([](coord_t, double& v) { v = 2 * v + 1; });
    ctx.data(1).for_each([](coord_t n, double& v) {
      v += static_cast<double>(n % 3) + 1;
    });
  };
  rt.launch(std::move(t));
}

// task t2(p<Node>, g<Node>): read-write p.down, reduce::+ g.up
void launch_t2(Runtime& rt, const Graph& graph, std::size_t i) {
  TaskLaunch t;
  t.name = "t2";
  t.requirements = {
      RegionReq{rt.subregion(graph.p, i), graph.down,
                Privilege::read_write()},
      RegionReq{rt.subregion(graph.g, i), graph.up,
                Privilege::reduce(kRedopSum)}};
  t.mapped_node = static_cast<NodeID>(i % rt.num_nodes());
  t.work_items = 12;
  t.fn = [](TaskContext& ctx) {
    ctx.data(0).for_each([](coord_t, double& v) { v = v / 2; });
    ctx.data(1).for_each([](coord_t, double& v) { v += 0.5; });
  };
  rt.launch(std::move(t));
}

struct ProgramResult {
  RegionData<double> up, down;
  bool operator==(const ProgramResult&) const = default;
};

ProgramResult run_program(Algorithm algorithm, bool print) {
  RuntimeConfig cfg;
  cfg.algorithm = algorithm;
  cfg.machine.num_nodes = 3;
  Runtime rt(cfg);
  Graph graph = build_graph(rt);

  // while (*) { for i: t1(P[i],G[i]); for i: t2(P[i],G[i]) }
  for (int iter = 0; iter < 3; ++iter) {
    for (std::size_t i = 0; i < 3; ++i) launch_t1(rt, graph, i);
    for (std::size_t i = 0; i < 3; ++i) launch_t2(rt, graph, i);
    rt.end_iteration();
  }

  if (print) {
    std::printf("region tree:\n%s\n", rt.forest().to_string(graph.n).c_str());
    const DepGraph& d = rt.dep_graph();
    std::printf("launches: %zu, dependence edges: %zu, critical path: %zu "
                "tasks (out of %zu)\n",
                d.task_count(), d.edge_count(), d.critical_path(),
                d.task_count());
    std::printf("-> the analysis found %zu-way parallelism per phase\n\n",
                d.task_count() / d.critical_path());
    // The dependences of the paper's Figure 5 discussion: within a phase
    // the three tasks are parallel, across phases they are ordered where
    // data overlaps.
    for (LaunchID t = 0; t < 6; ++t) {
      std::printf("task %llu depends on:", static_cast<unsigned long long>(t));
      for (LaunchID p : d.preds(t))
        std::printf(" %llu", static_cast<unsigned long long>(p));
      std::printf("\n");
    }
  }

  ProgramResult result{rt.observe(graph.n, graph.up),
                       rt.observe(graph.n, graph.down)};
  if (print) {
    RunStats stats = rt.finish();
    std::printf("\nsimulated on %u nodes: total %.3f ms, %zu messages, "
                "%.1f KiB moved\n",
                rt.num_nodes(), stats.total_time_s * 1e3, stats.messages,
                static_cast<double>(stats.message_bytes) / 1024.0);
  }
  return result;
}

} // namespace

int main() {
  std::printf("== visrt quickstart: the paper's Figure 1 program ==\n\n");
  ProgramResult ray = run_program(Algorithm::RayCast, /*print=*/true);

  // All three visibility algorithms implement the same apparently-
  // sequential semantics: their results are identical.
  ProgramResult paint = run_program(Algorithm::Paint, false);
  ProgramResult warnock = run_program(Algorithm::Warnock, false);
  ProgramResult oracle = run_program(Algorithm::Reference, false);
  bool agree = ray == paint && ray == warnock && ray == oracle;
  std::printf("\npainter == warnock == raycast == sequential oracle: %s\n",
              agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}
