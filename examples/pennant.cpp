// pennant example: the Section 8 Pennant benchmark at laptop scale — an
// unstructured quad mesh with aliased corner-point ghosts and two distinct
// reduction operators (sum for forces, min for the timestep), validated
// against a serial execution.
//
// Usage: ./pennant [pieces_x pieces_y zones_x zones_y iterations]
#include <cstdio>
#include <cstdlib>

#include "apps/pennant.h"

using namespace visrt;

int main(int argc, char** argv) {
  apps::PennantConfig cfg;
  cfg.pieces_x = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
  cfg.pieces_y = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 2;
  cfg.zones_per_piece_x = argc > 3 ? std::atoll(argv[3]) : 8;
  cfg.zones_per_piece_y = argc > 4 ? std::atoll(argv[4]) : 8;
  cfg.iterations = argc > 5 ? std::atoi(argv[5]) : 4;

  RuntimeConfig rcfg;
  rcfg.algorithm = Algorithm::RayCast;
  rcfg.machine.num_nodes = cfg.pieces_x * cfg.pieces_y;
  Runtime rt(rcfg);

  std::printf("pennant: %ux%u pieces of %lldx%lld zones, %d iterations\n",
              cfg.pieces_x, cfg.pieces_y,
              static_cast<long long>(cfg.zones_per_piece_x),
              static_cast<long long>(cfg.zones_per_piece_y), cfg.iterations);

  apps::PennantApp app(rt, cfg);
  app.run();

  bool ok = app.validate();
  RunStats stats = rt.finish();
  std::printf("launches %zu | dependence edges %zu | critical path %zu\n",
              stats.launches, stats.dep_edges, stats.critical_path);
  std::printf("simulated: init %.3f ms, %.3f ms/iteration steady, "
              "%zu messages\n",
              stats.init_time_s * 1e3, stats.steady_iter_s * 1e3,
              stats.messages);
  std::printf("final dt = %.6f\n", app.last_dt());
  std::printf("validation vs serial reference: %s\n",
              ok ? "PASS (bitwise)" : "FAIL");
  return ok ? 0 : 1;
}
