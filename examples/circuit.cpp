// circuit example: the Section 8 Circuit benchmark at laptop scale —
// an irregular graph with cross-piece wires, reductions into the aliased
// ghost partition, validated against a serial execution.
//
// Usage: ./circuit [pieces nodes_per_piece wires_per_piece iterations]
#include <cstdio>
#include <cstdlib>

#include "apps/circuit.h"

using namespace visrt;

int main(int argc, char** argv) {
  apps::CircuitConfig cfg;
  cfg.pieces = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  cfg.nodes_per_piece = argc > 2 ? std::atoll(argv[2]) : 32;
  cfg.wires_per_piece = argc > 3 ? std::atoll(argv[3]) : 48;
  cfg.iterations = argc > 4 ? std::atoi(argv[4]) : 4;

  RuntimeConfig rcfg;
  rcfg.algorithm = Algorithm::RayCast;
  rcfg.machine.num_nodes = cfg.pieces;
  Runtime rt(rcfg);

  std::printf("circuit: %u pieces, %lld nodes + %lld wires each "
              "(%.0f%% crossing), %d iterations\n",
              cfg.pieces, static_cast<long long>(cfg.nodes_per_piece),
              static_cast<long long>(cfg.wires_per_piece),
              cfg.cross_fraction * 100, cfg.iterations);

  apps::CircuitApp app(rt, cfg);
  app.run();

  bool ok = app.validate();
  RunStats stats = rt.finish();
  std::printf("launches %zu | dependence edges %zu | critical path %zu\n",
              stats.launches, stats.dep_edges, stats.critical_path);
  std::printf("simulated: init %.3f ms, %.3f ms/iteration steady, "
              "%zu messages\n",
              stats.init_time_s * 1e3, stats.steady_iter_s * 1e3,
              stats.messages);
  std::printf("validation vs serial reference: %s\n",
              ok ? "PASS (bitwise)" : "FAIL");
  return ok ? 0 : 1;
}
