// algorithm_comparison: a pocket version of the paper's evaluation — runs
// the Figure-1 graph program across machine sizes and prints a side-by-side
// table of simulated iteration times for all three visibility algorithms,
// with and without DCR, plus the tracing extension.
//
// Usage: ./algorithm_comparison [iterations]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "realm/reduction_ops.h"
#include "runtime/runtime.h"

using namespace visrt;

namespace {

struct Result {
  double init_ms;
  double steady_ms;
  std::size_t messages;
};

Result run(Algorithm algorithm, bool dcr, bool trace, std::uint32_t nodes,
           int iterations) {
  RuntimeConfig cfg;
  cfg.algorithm = algorithm;
  cfg.dcr = dcr;
  cfg.track_values = false; // timing-only sweep
  cfg.machine.num_nodes = nodes;
  Runtime rt(cfg);

  // One piece per node, Figure-1 style: disjoint primary + aliased ghosts.
  coord_t piece = 4096;
  coord_t total = piece * nodes;
  RegionHandle region = rt.create_region(IntervalSet(0, total - 1), "N");
  std::vector<IntervalSet> p, g;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    coord_t lo = static_cast<coord_t>(i) * piece;
    p.push_back(IntervalSet(lo, lo + piece - 1));
    coord_t left = (lo + total - 64) % total;
    coord_t right = (lo + piece) % total;
    g.push_back(IntervalSet{{left, left + 63}, {right, right + 63}});
  }
  PartitionHandle primary = rt.create_partition(region, std::move(p), "P");
  PartitionHandle ghost = rt.create_partition(region, std::move(g), "G");
  FieldID up = rt.add_field(region, "up", 0.0);
  FieldID down = rt.add_field(region, "down", 0.0);

  for (int iter = 0; iter < iterations; ++iter) {
    if (trace) rt.begin_trace(0);
    IndexLaunch t1;
    t1.name = "t1";
    t1.requirements = {IndexReq{primary, up, Privilege::read_write()},
                       IndexReq{ghost, down, Privilege::reduce(kRedopSum)}};
    t1.work_items = piece;
    rt.index_launch(t1);
    IndexLaunch t2;
    t2.name = "t2";
    t2.requirements = {IndexReq{primary, down, Privilege::read_write()},
                       IndexReq{ghost, up, Privilege::reduce(kRedopSum)}};
    t2.work_items = piece;
    rt.index_launch(t2);
    if (trace) rt.end_trace();
    rt.end_iteration();
  }

  RunStats stats = rt.finish();
  return Result{stats.init_time_s * 1e3, stats.steady_iter_s * 1e3,
                stats.messages};
}

} // namespace

int main(int argc, char** argv) {
  int iterations = argc > 1 ? std::atoi(argv[1]) : 5;
  std::vector<std::uint32_t> nodes_list{1, 4, 16, 64, 256};

  struct System {
    const char* label;
    Algorithm algorithm;
    bool dcr;
    bool trace;
  };
  std::vector<System> systems = {
      {"Paint  noDCR", Algorithm::Paint, false, false},
      {"Warnck noDCR", Algorithm::Warnock, false, false},
      {"Raycst noDCR", Algorithm::RayCast, false, false},
      {"Warnck DCR  ", Algorithm::Warnock, true, false},
      {"Raycst DCR  ", Algorithm::RayCast, true, false},
      {"Raycst trace", Algorithm::RayCast, false, true},
  };

  std::printf("Figure-1 graph program, %d iterations, one piece per node.\n",
              iterations);
  std::printf("Steady-state iteration time (simulated ms/iteration):\n\n");
  std::printf("%-14s", "system\\nodes");
  for (std::uint32_t n : nodes_list) std::printf("%10u", n);
  std::printf("\n");
  for (const System& sys : systems) {
    std::printf("%-14s", sys.label);
    for (std::uint32_t n : nodes_list) {
      Result r = run(sys.algorithm, sys.dcr, sys.trace, n, iterations);
      std::printf("%10.3f", r.steady_ms);
    }
    std::printf("\n");
  }
  std::printf("\nLower is better; flat rows weak-scale perfectly.  The\n"
              "orderings mirror the paper's Figures 15-17: the painter\n"
              "degrades first, Warnock and ray casting survive until the\n"
              "central analysis node saturates, and DCR (or the tracing\n"
              "extension) keeps the iteration time flat.\n");
  return 0;
}
