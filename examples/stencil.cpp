// stencil example: the Section 8 Stencil benchmark at laptop scale, with
// real data and validation against a serial execution.
//
// Usage: ./stencil [pieces_x pieces_y tile_rows tile_cols iterations]
#include <cstdio>
#include <cstdlib>

#include "apps/stencil.h"

using namespace visrt;

int main(int argc, char** argv) {
  apps::StencilConfig cfg;
  cfg.pieces_x = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
  cfg.pieces_y = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 2;
  cfg.tile_rows = argc > 3 ? std::atoll(argv[3]) : 16;
  cfg.tile_cols = argc > 4 ? std::atoll(argv[4]) : 16;
  cfg.iterations = argc > 5 ? std::atoi(argv[5]) : 4;

  RuntimeConfig rcfg;
  rcfg.algorithm = Algorithm::RayCast;
  rcfg.machine.num_nodes = cfg.pieces_x * cfg.pieces_y;
  Runtime rt(rcfg);

  std::printf("stencil: %ux%u pieces of %lldx%lld cells, %d iterations, "
              "ray-casting coherence on %u simulated nodes\n",
              cfg.pieces_x, cfg.pieces_y,
              static_cast<long long>(cfg.tile_rows),
              static_cast<long long>(cfg.tile_cols), cfg.iterations,
              rt.num_nodes());

  apps::StencilApp app(rt, cfg);
  app.run();

  bool ok = app.validate();
  RunStats stats = rt.finish();
  std::printf("launches %zu | dependence edges %zu | critical path %zu\n",
              stats.launches, stats.dep_edges, stats.critical_path);
  std::printf("simulated: init %.3f ms, %.3f ms/iteration steady, "
              "%zu messages\n",
              stats.init_time_s * 1e3, stats.steady_iter_s * 1e3,
              stats.messages);
  std::printf("validation vs serial reference: %s\n",
              ok ? "PASS (bitwise)" : "FAIL");
  return ok ? 0 : 1;
}
